"""Persistent, content-addressed cache of simulation results.

A simulation run is a pure function of its inputs: the benchmark's
generator traits, the compiler configuration (for hinted programs), the
processor configuration, the technique, and the instruction budgets.  The
cache therefore keys each (benchmark, technique) cell by a SHA-256 digest
of the canonical JSON encoding of exactly those inputs, and stores the
:class:`~repro.uarch.stats.SimulationStats` counters as JSON in one file
per cell.

Invalidation needs no bookkeeping: editing any input — a trait field, a
sizing margin, a cache geometry, an energy coefficient, the warm-up budget
— changes the digest, so the stale entry is simply never looked up again.
Energy parameters are part of the key for conservatism even though power
reports are recomputed from the cached counters on every load.

Because simulation results also depend on the *code* of the simulator,
compiler and workload generator, the digest additionally covers the bytes
of every module in the ``repro`` package: any source edit invalidates the
whole cache automatically.  :data:`CACHE_FORMAT_VERSION` remains as an
explicit big hammer (bump it when the stored payload layout itself
changes).

Entries are written atomically (temp file + ``os.replace``) so concurrent
workers and concurrent processes can share one cache directory safely.

Degradation policy (chaoskit): the cache is an accelerator, never a
single point of failure.  A corrupt entry (truncated file, foreign
payload, bad counter mapping) is **quarantined** — moved aside to
``quarantine/<fingerprint>.json`` where it stays visible for post-mortem
until ``cache gc`` expires it on the consumed-done-marker age bound —
and the load reports a clean miss.  A store that keeps failing after the
shared retry policy (read-only directory, disk full) falls back to an
**in-memory** entry with a warn-once per directory: the process keeps
its cache semantics for the rest of the run and the next healthy store
resumes persisting.

The module doubles as the cache-maintenance CLI for shared directories::

    PYTHONPATH=src python -m repro.harness.cache gc <cache_dir> \\
        [--max-entries N] [--max-bytes B] [--max-trace-bytes B] [--tmp-age S]

``gc`` sweeps orphaned ``.tmp-*`` writer files (left by processes killed
mid-store — the online pruners deliberately skip them because a live
writer may still own one), enforces the LRU caps offline over the result
directory and its ``traces/`` subdirectory, and prints a summary.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import json
import os
import time
import warnings
from pathlib import Path
from typing import Any, Optional

from repro.atomicio import TMP_PREFIX, publish_atomically
from repro.telemetry.metrics import MetricsRegistry, counter_property
from repro.harness import faults
from repro.uarch.stats import SimulationStats

#: Subdirectory (of a cache directory) holding quarantined corrupt
#: entries: visible for post-mortem, swept by ``cache gc`` on the same
#: age bound as consumed queue completion markers.
QUARANTINE_DIR_NAME = "quarantine"

#: Directories that have already warned about degraded (in-memory)
#: operation this process; one warning per directory, not per store.
_DEGRADED_WARNED: set[str] = set()

#: Bump when the stored payload layout changes so old entries stop
#: matching.  Simulation-semantics changes are covered automatically by
#: :func:`_code_digest`.  Version 2: warm-up clock rebase, I-miss branch
#: prediction, int-only register-file event counts.
CACHE_FORMAT_VERSION = 2


@functools.lru_cache(maxsize=1)
def _code_digest() -> str:
    """Digest of every ``repro`` source module's bytes.

    Simulation results are a function of the simulator's own code, not
    just its configuration, so the package source participates in each
    cell's fingerprint; any edit under ``src/repro/`` invalidates the
    cache without anyone remembering to bump a version constant.
    """
    import repro

    # ``repro`` is a namespace package, so use __path__ (``__file__`` is None).
    package_root = Path(next(iter(repro.__path__)))
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()


def _canonical(value: Any) -> Any:
    """Convert configs/traits into a JSON-stable structure.

    Dataclasses become field dicts, enums their values, dict keys strings
    (sorted by ``json.dumps(sort_keys=True)`` at serialisation time), and
    tuples lists, so equal inputs always produce byte-identical JSON.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {
            (key.value if isinstance(key, enum.Enum) else str(key)): _canonical(val)
            for key, val in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    return value


def simulation_fingerprint(
    traits,
    technique: str,
    compiler_config,
    processor_config,
    energy_params,
    max_instructions: int,
    warmup_instructions: int,
    abella_interval: int,
    sharding: Optional[dict] = None,
) -> str:
    """SHA-256 digest identifying one simulation cell's full input set.

    ``sharding`` describes a window-sharded execution plan
    (:mod:`repro.harness.shard`): span size, warm-up overlap and slack.
    A finite overlap makes the stitched statistics an approximation of
    the sequential run's, so sharded cells must never share a key with
    unsharded ones — when set, the plan participates in the digest
    (``None``, the default, leaves existing keys untouched).
    """
    payload = {
        "format": CACHE_FORMAT_VERSION,
        "code": _code_digest(),
        "traits": _canonical(traits),
        "technique": technique,
        "compiler": _canonical(compiler_config),
        "processor": _canonical(processor_config),
        "energy": _canonical(energy_params),
        "max_instructions": max_instructions,
        "warmup_instructions": warmup_instructions,
        "abella_interval": abella_interval,
    }
    if sharding is not None:
        payload["sharding"] = _canonical(sharding)
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def stats_to_dict(stats: SimulationStats) -> dict:
    """Flatten a :class:`SimulationStats` into plain JSON-able counters."""
    return dataclasses.asdict(stats)


def stats_from_dict(payload: dict) -> SimulationStats:
    """Rebuild a :class:`SimulationStats` from :func:`stats_to_dict` output."""
    field_names = {f.name for f in dataclasses.fields(SimulationStats)}
    return SimulationStats(**{k: v for k, v in payload.items() if k in field_names})


class ResultCache:
    """One-file-per-cell JSON cache of simulation statistics.

    The cache can be bounded: with ``max_entries`` set, every store prunes
    the least-recently-used cells down to the cap.  Recency is tracked
    through file modification times — each hit re-touches its cell — so
    the policy survives across processes sharing one directory and needs
    no sidecar index.

    Attributes:
        directory: cache root (created on first store).
        max_entries: size cap (None means unbounded, the default).
        hits / misses / stores / evictions: counters for tests and the
            ``--cache-stats`` report.
        quarantined / memory_stores: degradation counters — corrupt
            entries moved aside, and stores that fell back to process
            memory because the directory stopped accepting writes.

    The counters read and write as plain int attributes (the runner
    folds worker deltas in with ``+=``) but live in the ``metrics``
    registry (:class:`repro.telemetry.metrics.MetricsRegistry`), the
    same snapshot shape every other fleet component reports through.
    """

    hits = counter_property("hits")
    misses = counter_property("misses")
    stores = counter_property("stores")
    evictions = counter_property("evictions")
    quarantined = counter_property("quarantined")
    memory_stores = counter_property("memory_stores")

    def __init__(
        self, directory: str | os.PathLike, max_entries: Optional[int] = None
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be a positive integer or None")
        self.directory = Path(directory)
        self.max_entries = max_entries
        self.metrics = MetricsRegistry("result_cache")
        for name in (
            "hits",
            "misses",
            "stores",
            "evictions",
            "quarantined",
            "memory_stores",
        ):
            self.metrics.counter(name)
        # Degraded-mode fallback: entries that could not be persisted
        # (read-only or full directory) live here for this process's
        # lifetime so cache semantics survive the outage.
        self._memory: dict[str, SimulationStats] = {}

    def path_for(self, fingerprint: str) -> Path:
        """Cache file holding the cell identified by ``fingerprint``."""
        return self.directory / f"{fingerprint}.json"

    def quarantine_path(self, fingerprint: str) -> Path:
        """Where a corrupt cell is set aside for post-mortem."""
        return self.directory / QUARANTINE_DIR_NAME / f"{fingerprint}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside — visible, gc-swept, never reloaded.

        Without this, a corrupt cell would be re-read and re-missed on
        every lookup forever (the fingerprint keeps addressing the same
        bad file); moving it aside makes the next store land cleanly and
        leaves the evidence where ``cache gc`` reports and eventually
        expires it.
        """
        target = self.directory / QUARANTINE_DIR_NAME / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
            self.quarantined += 1
        except OSError:  # pragma: no cover - hostile or raced directory
            pass

    def load(self, fingerprint: str) -> Optional[SimulationStats]:
        """Return the cached stats for ``fingerprint``, or None on a miss.

        A malformed payload — valid JSON missing the ``"stats"`` key or
        the ``"format"`` marker every store writes (a foreign or
        truncated-then-rewritten file sharing the directory), or a
        ``"stats"`` value that isn't a counter mapping — is quarantined
        and counts as a miss, forcing a clean re-simulation.  A read
        error (EIO, permissions) is a plain miss: the file may be fine
        and the fault transient, so it is left in place.  Corruption
        must never crash a run.
        """
        memory = self._memory.get(fingerprint)
        if memory is not None:
            self.hits += 1
            return memory
        path = self.path_for(fingerprint)
        try:
            faults.maybe_fire("cache.load", fingerprint)
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("format") != CACHE_FORMAT_VERSION:
                raise ValueError("foreign or stale cache payload")
            counters = payload["stats"]
            if not isinstance(counters, dict):
                raise ValueError("stats payload is not a counter mapping")
            stats = stats_from_dict(counters)
        except (FileNotFoundError, OSError):
            # Missing file or a read error (EIO, permissions, an
            # injected cache.load fault): the file may be absent or
            # merely unreadable right now — plain miss, leave it alone.
            self.misses += 1
            return None
        except (
            json.JSONDecodeError,
            UnicodeDecodeError,
            KeyError,
            TypeError,
            ValueError,
            AttributeError,
        ):
            # These only arise for a file that *was* read successfully,
            # i.e. genuine corruption or a foreign payload: set it aside.
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:  # pragma: no cover - concurrent eviction
            pass
        return stats

    def store(
        self,
        fingerprint: str,
        stats: SimulationStats,
        benchmark: str = "",
        technique: str = "",
    ) -> Path:
        """Persist ``stats`` under ``fingerprint``; degrade, never fail.

        The atomic write is retried under the shared policy; when the
        directory stays unwritable (read-only remount, disk full) the
        entry is kept in process memory instead, with one warning per
        directory — a broken cache must cost performance, not the run.
        """
        payload = {
            "format": CACHE_FORMAT_VERSION,
            "benchmark": benchmark,
            "technique": technique,
            "stats": stats_to_dict(stats),
        }
        path = self.path_for(fingerprint)
        try:
            faults.DEFAULT_RETRY_POLICY.call(
                lambda: publish_atomically(
                    path,
                    lambda handle: json.dump(payload, handle, sort_keys=True),
                ),
                key=f"cache-store/{fingerprint}",
            )
        except OSError as error:
            self._memory[fingerprint] = stats
            self.memory_stores += 1
            directory_key = str(self.directory)
            if directory_key not in _DEGRADED_WARNED:
                _DEGRADED_WARNED.add(directory_key)
                warnings.warn(
                    f"result cache {directory_key} is not accepting writes "
                    f"({error}); falling back to in-memory caching for this "
                    f"process",
                    RuntimeWarning,
                    stacklevel=2,
                )
            self.stores += 1
            return path
        self._memory.pop(fingerprint, None)
        self.stores += 1
        if self.max_entries is not None:
            self._prune()
        return path

    def _entry_paths(self) -> list[Path]:
        # pathlib's glob matches dot-prefixed names, so exclude in-flight
        # (or orphaned) ``.tmp-*`` writer files explicitly.
        if not self.directory.is_dir():
            return []
        return [
            path
            for path in self.directory.glob("*.json")
            if not path.name.startswith(".")
        ]

    def _prune(self) -> None:
        """Evict least-recently-used cells beyond ``max_entries``."""
        entries = []
        for path in self._entry_paths():
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:  # pragma: no cover - concurrent eviction
                continue
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        entries.sort()
        for _, path in entries[:excess]:
            try:
                path.unlink()
                self.evictions += 1
            except OSError:  # pragma: no cover - concurrent eviction
                pass

    def cache_stats(self) -> dict:
        """Size and traffic summary for reports (``--cache-stats``)."""
        paths = self._entry_paths()
        total_bytes = 0
        for path in paths:
            try:
                total_bytes += path.stat().st_size
            except OSError:  # pragma: no cover - concurrent eviction
                pass
        return {
            "directory": str(self.directory),
            "entries": len(paths),
            "total_bytes": total_bytes,
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "memory_stores": self.memory_stores,
        }

    def __len__(self) -> int:
        return len(self._entry_paths())


# ----------------------------------------------------------------------
# Offline maintenance: python -m repro.harness.cache gc <dir>
# ----------------------------------------------------------------------
#: ``.tmp-*`` files younger than this are presumed to belong to a live
#: writer and are left alone by default.
DEFAULT_TMP_MAX_AGE_SECONDS = 3600.0


def collect_garbage(
    directory: str | os.PathLike,
    pattern: Optional[str] = "*.json",
    max_entries: Optional[int] = None,
    max_bytes: Optional[int] = None,
    tmp_max_age_seconds: float = DEFAULT_TMP_MAX_AGE_SECONDS,
    entry_max_age_seconds: Optional[float] = None,
    now: Optional[float] = None,
) -> dict:
    """Sweep one cache directory offline; returns a summary dict.

    Four passes, all tolerant of concurrent writers:

    1. **orphaned writers** — ``.tmp-*`` files older than
       ``tmp_max_age_seconds`` are deleted.  Atomic stores leave these
       behind only when the writing process died between ``mkstemp`` and
       ``os.replace``; the age guard keeps in-flight stores safe.
    2. **entry age** — with ``entry_max_age_seconds``, entries whose
       mtime is older are deleted (used for consumed queue completion
       markers, which otherwise accumulate forever).
    3. **entry cap** — with ``max_entries``, least-recently-used entries
       (file mtime; hits re-touch) beyond the cap are deleted.
    4. **byte cap** — with ``max_bytes``, least-recently-used entries
       are deleted until the directory's payload fits.

    Entries are files matching ``pattern`` whose names don't start with
    a dot, i.e. ``*.json`` for a :class:`ResultCache` directory and
    ``*.trace.bin`` for a :class:`~repro.uarch.trace.TraceCache` one.
    """
    directory = Path(directory)
    now = time.time() if now is None else now
    summary = {
        "directory": str(directory),
        "tmp_removed": 0,
        "entries_before": 0,
        "entries_removed": 0,
        "bytes_before": 0,
        "bytes_removed": 0,
    }
    if not directory.is_dir():
        return summary

    for path in directory.glob(TMP_PREFIX + "*"):
        try:
            if now - path.stat().st_mtime >= tmp_max_age_seconds:
                path.unlink()
                summary["tmp_removed"] += 1
        except OSError:  # pragma: no cover - concurrent removal
            continue

    entries = []
    for path in directory.glob(pattern) if pattern else ():
        if path.name.startswith("."):
            continue
        try:
            stat = path.stat()
        except OSError:  # pragma: no cover - concurrent removal
            continue
        entries.append((stat.st_mtime, stat.st_size, path))
    entries.sort()
    summary["entries_before"] = len(entries)
    summary["bytes_before"] = sum(size for _, size, _ in entries)

    def _remove(victims: list[tuple[float, int, Path]]) -> None:
        for _, size, path in victims:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent removal
                continue
            summary["entries_removed"] += 1
            summary["bytes_removed"] += size

    if entry_max_age_seconds is not None:
        cutoff = now - entry_max_age_seconds
        expired = [entry for entry in entries if entry[0] < cutoff]
        _remove(expired)
        entries = entries[len(expired):]
    if max_entries is not None and len(entries) > max_entries:
        excess = len(entries) - max_entries
        _remove(entries[:excess])
        entries = entries[excess:]
    if max_bytes is not None:
        total = sum(size for _, size, _ in entries)
        victims = []
        for entry in entries:
            if total <= max_bytes:
                break
            victims.append(entry)
            total -= entry[1]
        _remove(victims)
    return summary


#: Consumed completion markers older than this are swept by gc.  A week
#: comfortably outlives any driver that might still want to fold one,
#: while bounding ``queue/done`` growth (fingerprints embed the code
#: digest, so every source change strands one marker per grid cell).
DEFAULT_DONE_MARKER_MAX_AGE_SECONDS = 7 * 24 * 3600.0


def gc_cache_tree(
    cache_dir: str | os.PathLike,
    max_entries: Optional[int] = None,
    max_bytes: Optional[int] = None,
    max_trace_bytes: Optional[int] = None,
    tmp_max_age_seconds: float = DEFAULT_TMP_MAX_AGE_SECONDS,
    done_marker_max_age_seconds: Optional[float] = DEFAULT_DONE_MARKER_MAX_AGE_SECONDS,
    now: Optional[float] = None,
) -> list[dict]:
    """Garbage-collect a shared cache directory and its satellites.

    Covers the result cache at the top level, the decoded-trace cache in
    ``traces/``, and the work queue's subdirectories.  Live queue
    protocol files — pending jobs and leases — are never touched (only
    their orphaned ``.tmp-*`` writer files are); completion markers in
    ``queue/done`` are swept once older than
    ``done_marker_max_age_seconds`` (pass None to keep them all), since
    every driver folds its markers within one run and stale ones only
    duplicate what the result cache already stores.  Quarantined corrupt
    entries (``quarantine/`` and ``traces/quarantine/``) expire on the
    same age bound: long enough to post-mortem, bounded so one bad disk
    episode cannot grow the tree forever.  Stale telemetry span files
    (``telemetry/spans/*.jsonl``, one per traced process) expire on the
    marker bound too.
    """
    cache_dir = Path(cache_dir)
    summaries = [
        collect_garbage(
            cache_dir,
            "*.json",
            max_entries=max_entries,
            max_bytes=max_bytes,
            tmp_max_age_seconds=tmp_max_age_seconds,
            now=now,
        ),
        collect_garbage(
            cache_dir / "traces",
            "*.trace.bin",
            max_bytes=max_trace_bytes,
            tmp_max_age_seconds=tmp_max_age_seconds,
            now=now,
        ),
    ]
    for quarantine_dir, pattern in (
        (cache_dir / QUARANTINE_DIR_NAME, "*.json"),
        (cache_dir / "traces" / QUARANTINE_DIR_NAME, "*.trace.bin"),
    ):
        if quarantine_dir.is_dir():
            summaries.append(
                collect_garbage(
                    quarantine_dir,
                    pattern,
                    entry_max_age_seconds=done_marker_max_age_seconds,
                    tmp_max_age_seconds=tmp_max_age_seconds,
                    now=now,
                )
            )
    for sub in ("pending", "leases", "done", "poison", "workers"):
        queue_dir = cache_dir / "queue" / sub
        if queue_dir.is_dir():
            expire = (
                done_marker_max_age_seconds
                if sub in ("done", "poison", "workers")
                else None
            )
            summaries.append(
                collect_garbage(
                    queue_dir,
                    # pending/leases: temp sweep only — live protocol
                    # state.  done/poison: consumed markers expire by
                    # age; workers: per-worker stats files from hosts
                    # that stopped publishing expire the same way.
                    pattern="*.json" if expire is not None else None,
                    entry_max_age_seconds=expire,
                    tmp_max_age_seconds=tmp_max_age_seconds,
                    now=now,
                )
            )
    # Telemetry span files (telemetry/spans/<host>-<pid>.jsonl): pure
    # observability residue from traced runs, swept on the same age
    # bound as consumed completion markers so a fleet that traces
    # continuously cannot grow the directory forever.
    spans_dir = cache_dir / "telemetry" / "spans"
    if spans_dir.is_dir():
        summaries.append(
            collect_garbage(
                spans_dir,
                pattern="*.jsonl",
                entry_max_age_seconds=done_marker_max_age_seconds,
                tmp_max_age_seconds=tmp_max_age_seconds,
                now=now,
            )
        )
    return summaries


def format_gc_summary(summaries: list[dict]) -> str:
    """Human-readable one-line-per-directory gc report."""
    lines = []
    for s in summaries:
        kept = s["entries_before"] - s["entries_removed"]
        kept_bytes = s["bytes_before"] - s["bytes_removed"]
        lines.append(
            f"gc {s['directory']}: removed {s['tmp_removed']} orphaned tmp, "
            f"{s['entries_removed']} entries ({s['bytes_removed'] / 1024:.1f} KiB); "
            f"kept {kept} entries ({kept_bytes / 1024:.1f} KiB)"
        )
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Maintenance CLI for shared simulation-cache directories"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    gc = sub.add_parser("gc", help="sweep orphaned temp files, enforce caps offline")
    gc.add_argument("cache_dir", help="shared cache directory")
    gc.add_argument("--max-entries", type=int, default=None, help="result-cache cap")
    gc.add_argument("--max-bytes", type=int, default=None, help="result-cache byte cap")
    gc.add_argument(
        "--max-trace-bytes", type=int, default=None, help="trace-cache byte cap"
    )
    gc.add_argument(
        "--tmp-age",
        type=float,
        default=DEFAULT_TMP_MAX_AGE_SECONDS,
        help="minimum age (s) before a .tmp-* writer file counts as orphaned",
    )
    gc.add_argument(
        "--done-age",
        type=float,
        default=DEFAULT_DONE_MARKER_MAX_AGE_SECONDS,
        help="age (s) after which consumed queue completion markers are swept",
    )
    args = parser.parse_args(argv)
    summaries = gc_cache_tree(
        args.cache_dir,
        max_entries=args.max_entries,
        max_bytes=args.max_bytes,
        max_trace_bytes=args.max_trace_bytes,
        tmp_max_age_seconds=args.tmp_age,
        done_marker_max_age_seconds=args.done_age,
    )
    print(format_gc_summary(summaries))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
