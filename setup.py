"""Setup shim so editable installs work without the `wheel` package.

This file enables the legacy `pip install -e .` code path on environments
whose setuptools cannot build PEP 660 editable wheels, and declares the
optional dependency of the columnar replay engine.

numpy is deliberately an *extra*, not a hard requirement: the scalar
engine (and therefore the whole tier-1 suite) runs on a bare Python
toolchain, and hosts without numpy get a clear
``ColumnarUnavailableError`` naming this extra only when the columnar
kernel is actually selected (see ``repro.uarch.engine.columnar``) —
never an ``ImportError`` at callsite depth.
"""
from setuptools import setup

setup(
    extras_require={
        # The columnar replay kernel (engine="columnar",
        # REPRO_REPLAY_KERNEL=columnar) lowers trace windows into numpy
        # structured arrays; everything else runs without it.
        "columnar": ["numpy>=1.22"],
    },
)
