"""Shared fixtures for the figure/table regeneration benchmarks.

One :class:`SuiteRunner` is shared by every benchmark module so each
(benchmark, technique) pair is simulated exactly once per pytest session;
the per-figure benchmarks then measure the figure-assembly step and, more
importantly, print the regenerated numbers next to the paper's values.

The instruction budget below is the compromise between fidelity and the
runtime of a pure-Python cycle-level simulator; raise it (e.g. to 100k+)
for a higher-fidelity reproduction run.
"""

from __future__ import annotations

import pytest

from repro.harness import RunConfig, SuiteRunner


@pytest.fixture(scope="session")
def runner() -> SuiteRunner:
    return SuiteRunner(RunConfig(max_instructions=8_000, warmup_instructions=2_500))

