"""Persistent, content-addressed cache of simulation results.

A simulation run is a pure function of its inputs: the benchmark's
generator traits, the compiler configuration (for hinted programs), the
processor configuration, the technique, and the instruction budgets.  The
cache therefore keys each (benchmark, technique) cell by a SHA-256 digest
of the canonical JSON encoding of exactly those inputs, and stores the
:class:`~repro.uarch.stats.SimulationStats` counters as JSON in one file
per cell.

Invalidation needs no bookkeeping: editing any input — a trait field, a
sizing margin, a cache geometry, an energy coefficient, the warm-up budget
— changes the digest, so the stale entry is simply never looked up again.
Energy parameters are part of the key for conservatism even though power
reports are recomputed from the cached counters on every load.

Because simulation results also depend on the *code* of the simulator,
compiler and workload generator, the digest additionally covers the bytes
of every module in the ``repro`` package: any source edit invalidates the
whole cache automatically.  :data:`CACHE_FORMAT_VERSION` remains as an
explicit big hammer (bump it when the stored payload layout itself
changes).

Entries are written atomically (temp file + ``os.replace``) so concurrent
workers and concurrent processes can share one cache directory safely.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional

from repro.uarch.stats import SimulationStats

#: Bump when the stored payload layout changes so old entries stop
#: matching.  Simulation-semantics changes are covered automatically by
#: :func:`_code_digest`.  Version 2: warm-up clock rebase, I-miss branch
#: prediction, int-only register-file event counts.
CACHE_FORMAT_VERSION = 2


@functools.lru_cache(maxsize=1)
def _code_digest() -> str:
    """Digest of every ``repro`` source module's bytes.

    Simulation results are a function of the simulator's own code, not
    just its configuration, so the package source participates in each
    cell's fingerprint; any edit under ``src/repro/`` invalidates the
    cache without anyone remembering to bump a version constant.
    """
    import repro

    # ``repro`` is a namespace package, so use __path__ (``__file__`` is None).
    package_root = Path(next(iter(repro.__path__)))
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()


def _canonical(value: Any) -> Any:
    """Convert configs/traits into a JSON-stable structure.

    Dataclasses become field dicts, enums their values, dict keys strings
    (sorted by ``json.dumps(sort_keys=True)`` at serialisation time), and
    tuples lists, so equal inputs always produce byte-identical JSON.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {
            (key.value if isinstance(key, enum.Enum) else str(key)): _canonical(val)
            for key, val in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    return value


def simulation_fingerprint(
    traits,
    technique: str,
    compiler_config,
    processor_config,
    energy_params,
    max_instructions: int,
    warmup_instructions: int,
    abella_interval: int,
) -> str:
    """SHA-256 digest identifying one simulation cell's full input set."""
    payload = {
        "format": CACHE_FORMAT_VERSION,
        "code": _code_digest(),
        "traits": _canonical(traits),
        "technique": technique,
        "compiler": _canonical(compiler_config),
        "processor": _canonical(processor_config),
        "energy": _canonical(energy_params),
        "max_instructions": max_instructions,
        "warmup_instructions": warmup_instructions,
        "abella_interval": abella_interval,
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def stats_to_dict(stats: SimulationStats) -> dict:
    """Flatten a :class:`SimulationStats` into plain JSON-able counters."""
    return dataclasses.asdict(stats)


def stats_from_dict(payload: dict) -> SimulationStats:
    """Rebuild a :class:`SimulationStats` from :func:`stats_to_dict` output."""
    field_names = {f.name for f in dataclasses.fields(SimulationStats)}
    return SimulationStats(**{k: v for k, v in payload.items() if k in field_names})


class ResultCache:
    """One-file-per-cell JSON cache of simulation statistics.

    The cache can be bounded: with ``max_entries`` set, every store prunes
    the least-recently-used cells down to the cap.  Recency is tracked
    through file modification times — each hit re-touches its cell — so
    the policy survives across processes sharing one directory and needs
    no sidecar index.

    Attributes:
        directory: cache root (created on first store).
        max_entries: size cap (None means unbounded, the default).
        hits / misses / stores / evictions: counters for tests and the
            ``--cache-stats`` report.
    """

    def __init__(
        self, directory: str | os.PathLike, max_entries: Optional[int] = None
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be a positive integer or None")
        self.directory = Path(directory)
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def path_for(self, fingerprint: str) -> Path:
        """Cache file holding the cell identified by ``fingerprint``."""
        return self.directory / f"{fingerprint}.json"

    def load(self, fingerprint: str) -> Optional[SimulationStats]:
        """Return the cached stats for ``fingerprint``, or None on a miss.

        A malformed payload — valid JSON missing the ``"stats"`` key or
        the ``"format"`` marker every store writes (a foreign or
        truncated-then-rewritten file sharing the directory), or a
        ``"stats"`` value that isn't a counter mapping — counts as a
        miss and forces a clean re-simulation, exactly like a missing or
        unparsable file.  Corruption must never crash a run.
        """
        path = self.path_for(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("format") != CACHE_FORMAT_VERSION:
                raise ValueError("foreign or stale cache payload")
            counters = payload["stats"]
            if not isinstance(counters, dict):
                raise ValueError("stats payload is not a counter mapping")
            stats = stats_from_dict(counters)
        except (
            FileNotFoundError,
            json.JSONDecodeError,
            KeyError,
            TypeError,
            ValueError,
            AttributeError,
        ):
            self.misses += 1
            return None
        self.hits += 1
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:  # pragma: no cover - concurrent eviction
            pass
        return stats

    def store(
        self,
        fingerprint: str,
        stats: SimulationStats,
        benchmark: str = "",
        technique: str = "",
    ) -> Path:
        """Atomically persist ``stats`` under ``fingerprint``."""
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": CACHE_FORMAT_VERSION,
            "benchmark": benchmark,
            "technique": technique,
            "stats": stats_to_dict(stats),
        }
        path = self.path_for(fingerprint)
        fd, temp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except FileNotFoundError:
                pass
            raise
        self.stores += 1
        if self.max_entries is not None:
            self._prune()
        return path

    def _entry_paths(self) -> list[Path]:
        # pathlib's glob matches dot-prefixed names, so exclude in-flight
        # (or orphaned) ``.tmp-*`` writer files explicitly.
        if not self.directory.is_dir():
            return []
        return [
            path
            for path in self.directory.glob("*.json")
            if not path.name.startswith(".")
        ]

    def _prune(self) -> None:
        """Evict least-recently-used cells beyond ``max_entries``."""
        entries = []
        for path in self._entry_paths():
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:  # pragma: no cover - concurrent eviction
                continue
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        entries.sort()
        for _, path in entries[:excess]:
            try:
                path.unlink()
                self.evictions += 1
            except OSError:  # pragma: no cover - concurrent eviction
                pass

    def cache_stats(self) -> dict:
        """Size and traffic summary for reports (``--cache-stats``)."""
        paths = self._entry_paths()
        total_bytes = 0
        for path in paths:
            try:
                total_bytes += path.stat().st_size
            except OSError:  # pragma: no cover - concurrent eviction
                pass
        return {
            "directory": str(self.directory),
            "entries": len(paths),
            "total_bytes": total_bytes,
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }

    def __len__(self) -> int:
        return len(self._entry_paths())
