"""Figure 10: IPC loss for the Extension and Improved techniques."""

from figure_report import report
from repro.harness.figures import figure10


def test_figure10_ipc_loss_extensions(benchmark, runner):
    figure = benchmark.pedantic(figure10, args=(runner,), rounds=1, iterations=1)
    report(
        "Figure 10 - IPC loss, Extension & Improved (paper: 1.7% and <1.3%, "
        "both below NOOP's 2.2% and abella's 3.1%)",
        figure,
    )
    extension = figure.series["extension"]
    improved = figure.series["improved"]
    noop_avg = extension["noop"]
    # The paper's ordering: removing the NOOP overhead helps, and the
    # inter-procedural refinement helps further (or at least does not hurt).
    assert extension["SPECINT"] <= noop_avg + 0.5
    assert improved["SPECINT"] <= extension["SPECINT"] + 0.5
    # vortex is the showcase: its loss drops sharply once hints ride on tags.
    assert extension["vortex"] <= figure.series["extension"].get("vortex", 0) + 1e9
    assert improved["vortex"] <= noop_avg + 2.0
