"""Fleet metrics plane: counters, gauges, and histograms with one shape.

Every long-lived harness object (the result cache, the work queue, the
event-driven completion core, the service daemon) used to keep its own
hand-rolled dict of integer counters and expose it through a bespoke
``*_stats()`` method.  This module replaces those dicts with a single
:class:`MetricsRegistry` per object: counters and gauges are named
metrics created on first use, and every registry renders through the
same ``snapshot()`` shape::

    {"counters": {name: int, ...},
     "gauges": {name: float | None, ...},
     "histograms": {name: {"count", "min", "max", "mean",
                           "p50", "p90", "p99"}, ...}}

The existing public stats dicts (``cache_stats()``, ``WorkQueue.stats``,
service ``status``) keep their key layout — they are now *views* over a
registry instead of parallel bookkeeping — and callers that mutated
counters as plain attributes (``cache.hits += deltas["hits"]``) keep
working through the :class:`counter_property` descriptor.

Nothing here touches the simulation hot path: incrementing a counter is
an integer add on a plain attribute, and histograms retain a bounded
window of observations so memory cannot grow with run length.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterable

# Observations retained per histogram.  Percentiles are computed over
# this sliding window, which is plenty for the second-scale latencies
# the harness records and keeps a long-lived daemon's memory bounded.
HISTOGRAM_WINDOW = 1024


def percentile(values: Iterable[float], fraction: float) -> float | None:
    """Linear-interpolated percentile of *values* (fraction in [0, 1]).

    Returns None for an empty input instead of raising, so callers can
    render "no data yet" states without special-casing.
    """
    ordered = sorted(values)
    if not ordered:
        return None
    if len(ordered) == 1:
        return float(ordered[0])
    rank = fraction * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return float(ordered[low] * (1.0 - weight) + ordered[high] * weight)


class Counter:
    """A monotonically *intended* integer counter (resettable for tests)."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> int:
        self.value += amount
        return self.value


class Gauge:
    """A point-in-time value; ``None`` until first set."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float | None) -> None:
        self.value = value


class Histogram:
    """A bounded window of observations summarised by percentiles."""

    kind = "histogram"
    __slots__ = ("name", "_window", "count", "_lock")

    def __init__(self, name: str, window: int = HISTOGRAM_WINDOW) -> None:
        self.name = name
        self._window: deque[float] = deque(maxlen=window)
        self.count = 0  # total ever observed, not just the window
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self._window.append(float(value))

    def summary(self) -> dict:
        with self._lock:
            window = list(self._window)
        if not window:
            return {
                "count": self.count,
                "min": None,
                "max": None,
                "mean": None,
                "p50": None,
                "p90": None,
                "p99": None,
            }
        return {
            "count": self.count,
            "min": min(window),
            "max": max(window),
            "mean": sum(window) / len(window),
            "p50": percentile(window, 0.50),
            "p90": percentile(window, 0.90),
            "p99": percentile(window, 0.99),
        }


class MetricsRegistry:
    """Named counters/gauges/histograms with one ``snapshot()`` shape."""

    def __init__(self, namespace: str = "") -> None:
        self.namespace = namespace
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, factory):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = self._metrics[name] = factory(name)
        if not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def counters(self) -> dict[str, int]:
        """The counter subset as a plain dict (legacy stats views)."""
        return {
            name: metric.value
            for name, metric in sorted(self._metrics.items())
            if isinstance(metric, Counter)
        }

    def snapshot(self) -> dict:
        counters: dict[str, int] = {}
        gauges: dict[str, float | None] = {}
        histograms: dict[str, dict] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.summary()
        return {
            "namespace": self.namespace,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


class counter_property:
    """Descriptor exposing a registry counter as a plain int attribute.

    Lets the instrumented classes keep their historical attribute API —
    ``cache.hits``, ``queue.counters`` consumers, and the runner's
    ``cache.hits += deltas["hits"]`` fold-in all read and write through
    here — while the single source of truth is the object's
    ``metrics`` registry.
    """

    def __init__(self, name: str, registry_attr: str = "metrics") -> None:
        self.name = name
        self.registry_attr = registry_attr

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return getattr(obj, self.registry_attr).counter(self.name).value

    def __set__(self, obj, value) -> None:
        getattr(obj, self.registry_attr).counter(self.name).value = int(value)
