"""Synthetic program generator.

Builds runnable IR programs from :class:`~repro.workloads.traits.BenchmarkTraits`.
Generated programs follow a fixed register convention so that procedures can
be composed freely without breaking loop counters or pointers:

====================  =====================================================
registers             role
====================  =====================================================
``r0``                always zero
``r1``  .. ``r12``    leaf-procedure and body scratch / dependence chains
``r13`` .. ``r15``    library-procedure scratch
``r16`` .. ``r21``    phase-procedure dependence-chain accumulators
``r22``, ``r23``      phase-local data pointers
``r24``, ``r25``      global data-region base registers (set up in main)
``r26``, ``r27``      inner/outer loop counters inside phase procedures
``r28``               top-level driver loop counter (main only)
``r29``               stack pointer (reserved, unused)
``r30``, ``r31``      spare globals
====================  =====================================================

The structure of every generated program is::

    main:        set up base registers, then a driver loop that calls each
                 phase procedure in turn (and occasionally a library stub)
    phase_*:     loop kernels, DAG kernels, switch kernels or call kernels
    leaf_*:      small straight-line procedures called from kernels
    lib_*:       library procedures (excluded from compiler analysis)
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import BasicBlock, Procedure, Program
from repro.isa.registers import Reg
from repro.workloads.traits import BenchmarkTraits


# Register convention (see module docstring).
SCRATCH_REGS = [Reg(i) for i in range(1, 13)]
LIBRARY_REGS = [Reg(i) for i in range(13, 16)]
CHAIN_REGS = [Reg(i) for i in range(16, 22)]
# FP dependence-chain accumulators (only used when traits.fp_fraction > 0).
FP_CHAIN_REGS = [Reg(i, is_fp=True) for i in range(1, 7)]
POINTER_A = Reg(22)
POINTER_B = Reg(23)
GLOBAL_BASE_A = Reg(24)
GLOBAL_BASE_B = Reg(25)
INNER_COUNTER = Reg(26)
LOOP_COUNTER = Reg(27)
DRIVER_COUNTER = Reg(28)

#: Start of the synthetic data region (separate from code addresses).
DATA_REGION_A = 0x200000
DATA_REGION_B = 0x600000

_ALU_OPCODES = (Opcode.ADD, Opcode.SUB, Opcode.XOR, Opcode.AND, Opcode.OR)


@dataclass
class _BodyContext:
    """Mutable state threaded through body generation for one kernel.

    ``pointer_chase`` is carried per kernel rather than read off the
    traits so one program can mix chasing and non-chasing kernels (the
    multi-phase ``phaseflip`` family builds both groups side by side).
    """

    chains: list[Reg]
    pointer: Reg
    store_pointer: Reg
    stride: int
    predictable_branches: bool = True
    pointer_chase: bool = False


class SyntheticProgramGenerator:
    """Builds one synthetic benchmark program from its traits."""

    def __init__(self, traits: BenchmarkTraits):
        self.traits = traits
        self.rng = random.Random(traits.seed)
        self.program = Program(name=traits.name)
        self._label_counter = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def build(self) -> Program:
        """Generate and validate the program."""
        traits = self.traits
        leaf_names = [self._build_leaf(i) for i in range(traits.num_leaf_procs)]
        library_names = [self._build_library(i) for i in range(traits.num_library_procs)]

        phase_names: list[str] = []
        chase_names: list[str] = []
        if traits.phase_flip:
            # Two contrasting kernel groups from one trait set: the loop
            # and DAG kernels without pointer chasing (ILP-rich phase A)
            # and a matching set of chasing loop kernels (serial,
            # memory-bound phase B).  main alternates between them.
            for index in range(traits.num_loop_kernels):
                phase_names.append(
                    self._build_loop_kernel(
                        f"loop_kernel_{index}", leaf_names, chase=False
                    )
                )
            for index in range(traits.num_dag_kernels):
                phase_names.append(
                    self._build_dag_kernel(f"dag_kernel_{index}", chase=False)
                )
            for index in range(traits.num_loop_kernels):
                chase_names.append(
                    self._build_loop_kernel(
                        f"chase_kernel_{index}", leaf_names, chase=True
                    )
                )
        else:
            for index in range(traits.num_loop_kernels):
                phase_names.append(self._build_loop_kernel(f"loop_kernel_{index}", leaf_names))
            for index in range(traits.num_dag_kernels):
                phase_names.append(self._build_dag_kernel(f"dag_kernel_{index}"))
            for index in range(traits.num_switch_kernels):
                phase_names.append(self._build_switch_kernel(f"switch_kernel_{index}"))
            for index in range(traits.num_call_kernels):
                phase_names.append(self._build_call_kernel(f"call_kernel_{index}", leaf_names))

        self.rng.shuffle(phase_names)
        self._build_main(phase_names, library_names, chase_names or None)
        self.program.validate()
        return self.program

    # ------------------------------------------------------------------
    # Naming helpers
    # ------------------------------------------------------------------
    def _label(self, prefix: str) -> str:
        self._label_counter += 1
        return f"{prefix}_{self._label_counter}"

    def _randint(self, bounds: tuple[int, int]) -> int:
        low, high = bounds
        return self.rng.randint(low, high)

    # ------------------------------------------------------------------
    # Body generation
    # ------------------------------------------------------------------
    def _stride_for_working_set(self) -> int:
        """Pick a pointer stride so the touched range matches the working set."""
        traits = self.traits
        kernels = max(
            1,
            traits.num_loop_kernels + traits.num_call_kernels,
        )
        per_kernel = max(256, traits.working_set_bytes // kernels)
        trips = max(1, sum(traits.loop_trip_count) // 2)
        stride = max(8, per_kernel // trips)
        # Keep strides word aligned.
        return (stride // 8) * 8

    def _emit_body(self, block: BasicBlock, count: int, ctx: _BodyContext) -> None:
        """Emit ``count`` data-processing instructions into ``block``."""
        traits = self.traits
        rng = self.rng
        fp_threshold = traits.mem_fraction + traits.mul_fraction + traits.fp_fraction
        for _ in range(count):
            roll = rng.random()
            if ctx.pointer_chase and roll < traits.mem_fraction * 0.7:
                self._emit_pointer_chase_step(block, ctx)
            elif roll < traits.mem_fraction:
                self._emit_memory_op(block, ctx)
            elif roll < traits.mem_fraction + traits.mul_fraction:
                self._emit_mul(block, ctx)
            elif roll < fp_threshold:
                self._emit_fp(block, ctx)
            else:
                self._emit_alu(block, ctx)

    def _emit_alu(self, block: BasicBlock, ctx: _BodyContext) -> None:
        rng = self.rng
        opcode = rng.choice(_ALU_OPCODES)
        chain = rng.choice(ctx.chains)
        if rng.random() < 0.6 or len(ctx.chains) == 1:
            # Extend the chain with an immediate operand.
            block.append(Instruction.alu(opcode, chain, [chain], imm=rng.randint(1, 7)))
        else:
            other = rng.choice([reg for reg in ctx.chains if reg != chain])
            block.append(Instruction.alu(opcode, chain, [chain, other]))

    def _emit_fp(self, block: BasicBlock, ctx: _BodyContext) -> None:
        """A floating-point chain step (FADD/FSUB/FMUL, rarely FDIV)."""
        rng = self.rng
        chain = rng.choice(FP_CHAIN_REGS)
        roll = rng.random()
        if roll < 0.05:
            opcode = Opcode.FDIV
        elif roll < 0.40:
            opcode = Opcode.FMUL
        else:
            opcode = rng.choice((Opcode.FADD, Opcode.FSUB))
        if rng.random() < 0.6:
            block.append(Instruction.alu(opcode, chain, [chain], imm=rng.randint(1, 5)))
        else:
            other = rng.choice([reg for reg in FP_CHAIN_REGS if reg != chain])
            block.append(Instruction.alu(opcode, chain, [chain, other]))

    def _emit_mul(self, block: BasicBlock, ctx: _BodyContext) -> None:
        rng = self.rng
        chain = rng.choice(ctx.chains)
        scratch = rng.choice(SCRATCH_REGS)
        block.append(Instruction.alu(Opcode.MUL, scratch, [chain], imm=rng.randint(3, 9)))
        block.append(Instruction.alu(Opcode.ADD, chain, [chain, scratch]))

    def _emit_memory_op(self, block: BasicBlock, ctx: _BodyContext) -> None:
        rng = self.rng
        traits = self.traits
        offset = rng.randrange(0, 8) * 8
        if rng.random() < traits.store_fraction:
            value = rng.choice(ctx.chains)
            block.append(Instruction.store(value, ctx.store_pointer, offset))
        else:
            dest = rng.choice(SCRATCH_REGS)
            block.append(Instruction.load(dest, ctx.pointer, offset))
            chain = rng.choice(ctx.chains)
            block.append(Instruction.alu(Opcode.ADD, chain, [chain, dest]))

    def _emit_pointer_chase_step(self, block: BasicBlock, ctx: _BodyContext) -> None:
        """A dependent-load step: p = base + ((mem[p] [+ counter]) << shift).

        Without counter mixing the chase is a fixed function of the current
        address, so it settles into a short cycle that fits in cache (the
        mcf behaviour: serialised but not capacity bound).  Mixing the loop
        counter in makes every iteration visit fresh lines, thrashing the
        caches across the whole ``64K << chase_shift`` reach.
        """
        traits = self.traits
        loaded = SCRATCH_REGS[0]
        shifted = SCRATCH_REGS[1]
        block.append(Instruction.load(loaded, ctx.pointer, 0))
        if traits.chase_mix_counter:
            block.append(Instruction.alu(Opcode.ADD, loaded, [loaded, LOOP_COUNTER]))
        block.append(Instruction.alu(Opcode.SHL, shifted, [loaded], imm=traits.chase_shift))
        block.append(Instruction.alu(Opcode.ADD, ctx.pointer, [shifted, GLOBAL_BASE_A]))

    def _emit_pointer_advance(self, block: BasicBlock, ctx: _BodyContext) -> None:
        """Strided pointer update executed once per loop iteration."""
        if ctx.pointer_chase:
            return
        block.append(Instruction.alu(Opcode.ADD, ctx.pointer, [ctx.pointer], imm=ctx.stride))
        block.append(
            Instruction.alu(Opcode.ADD, ctx.store_pointer, [ctx.store_pointer], imm=ctx.stride)
        )

    def _emit_condition(self, block: BasicBlock, ctx: _BodyContext, dest: Reg) -> None:
        """Compute a branch condition into ``dest``."""
        if self.rng.random() < self.traits.predictable_branch_fraction:
            # Loop-counter derived: highly predictable.
            block.append(Instruction.alu(Opcode.AND, dest, [LOOP_COUNTER], imm=0x7))
            block.append(Instruction.alu(Opcode.CMP_EQ, dest, [dest], imm=0))
        elif self.traits.hostile_branches:
            # LCG derived: a pseudo-random bit no history predictor learns.
            state = SCRATCH_REGS[2]
            block.append(Instruction.alu(Opcode.MUL, state, [state], imm=1664525))
            block.append(Instruction.alu(Opcode.ADD, state, [state], imm=1013904223))
            block.append(Instruction.alu(Opcode.SHR, dest, [state], imm=13))
            block.append(Instruction.alu(Opcode.AND, dest, [dest], imm=1))
        else:
            # Data derived: effectively random per address.
            scratch = SCRATCH_REGS[2]
            block.append(Instruction.load(scratch, ctx.pointer, 8))
            block.append(Instruction.alu(Opcode.AND, dest, [scratch], imm=1))

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def _phase_prologue(
        self, proc: Procedure, trips: int, chase: bool | None = None
    ) -> tuple[BasicBlock, _BodyContext]:
        """Standard kernel entry block: counters, pointers, chain seeds.

        ``chase`` overrides the traits' pointer-chase flag for this one
        kernel (None: follow the traits) — the phase-flip families build
        chasing and non-chasing kernels from the same traits.
        """
        entry = proc.add_block(self._label(f"{proc.name}_entry"))
        traits = self.traits
        entry.append(Instruction.load_imm(LOOP_COUNTER, trips))
        offset_a = self.rng.randrange(0, 64) * 64
        offset_b = self.rng.randrange(0, 64) * 64
        entry.append(Instruction.alu(Opcode.ADD, POINTER_A, [GLOBAL_BASE_A], imm=offset_a))
        entry.append(Instruction.alu(Opcode.ADD, POINTER_B, [GLOBAL_BASE_B], imm=offset_b))
        chains = CHAIN_REGS[: max(1, traits.ilp_width)]
        for index, chain in enumerate(chains):
            entry.append(Instruction.load_imm(chain, index + 1))
        self._seed_fp_chains(entry)
        ctx = _BodyContext(
            chains=list(chains),
            pointer=POINTER_A,
            store_pointer=POINTER_B,
            stride=self._stride_for_working_set(),
            pointer_chase=traits.pointer_chase if chase is None else chase,
        )
        return entry, ctx

    def _seed_fp_chains(self, entry: BasicBlock) -> None:
        """Initialise the FP accumulators when the family uses FP work."""
        if self.traits.fp_fraction > 0:
            for index, chain in enumerate(FP_CHAIN_REGS):
                entry.append(Instruction.load_imm(chain, index + 2))

    def _build_loop_kernel(
        self, name: str, leaf_names: list[str], chase: bool | None = None
    ) -> str:
        """A counted loop whose body mixes ALU, memory and (maybe) calls."""
        traits = self.traits
        rng = self.rng
        proc = self.program.new_procedure(name)
        trips = self._randint(traits.loop_trip_count)
        _, ctx = self._phase_prologue(proc, trips, chase)

        head_label = self._label(f"{name}_loop")
        head = proc.add_block(head_label)
        body_size = self._randint(traits.loop_body_size)

        has_diamond = rng.random() < traits.branch_in_loop_prob
        has_call = bool(leaf_names) and rng.random() < traits.call_in_loop_prob

        first_chunk = body_size // 2 if (has_diamond or has_call) else body_size
        self._emit_body(head, first_chunk, ctx)

        current = head
        if has_diamond:
            current = self._emit_diamond(proc, name, current, ctx, body_size // 4 + 1)
        if has_call:
            # The call ends its block; execution falls through to the next.
            current.append(Instruction.call(rng.choice(leaf_names)))
            current = proc.add_block(self._label(f"{name}_postcall"))
            self._emit_body(current, max(2, body_size // 4), ctx)
        elif has_diamond:
            self._emit_body(current, max(2, body_size // 4), ctx)

        # Loop latch: pointer advance, counter decrement, back edge.
        latch = current
        self._emit_pointer_advance(latch, ctx)
        latch.append(Instruction.alu(Opcode.SUB, LOOP_COUNTER, [LOOP_COUNTER], imm=1))
        latch.append(Instruction.branch_nez(LOOP_COUNTER, head_label))

        exit_block = proc.add_block(self._label(f"{name}_exit"))
        exit_block.append(Instruction.ret())
        return name

    def _emit_diamond(
        self,
        proc: Procedure,
        name: str,
        current: BasicBlock,
        ctx: _BodyContext,
        arm_size: int,
    ) -> BasicBlock:
        """Emit an if/else diamond; return the join block (for continuation)."""
        cond = SCRATCH_REGS[3]
        self._emit_condition(current, ctx, cond)
        else_label = self._label(f"{name}_else")
        join_label = self._label(f"{name}_join")
        current.append(Instruction.branch_eqz(cond, else_label))

        then_block = proc.add_block(self._label(f"{name}_then"))
        self._emit_body(then_block, arm_size, ctx)
        then_block.append(Instruction.jump(join_label))

        else_block = proc.add_block(else_label)
        self._emit_body(else_block, arm_size, ctx)

        join_block = proc.add_block(join_label)
        return join_block

    def _build_dag_kernel(self, name: str, chase: bool | None = None) -> str:
        """Straight-line code with a run of if/else diamonds, no loops."""
        traits = self.traits
        proc = self.program.new_procedure(name)
        entry = proc.add_block(self._label(f"{name}_entry"))
        entry.append(Instruction.alu(Opcode.ADD, POINTER_A, [GLOBAL_BASE_A], imm=128))
        entry.append(Instruction.alu(Opcode.ADD, POINTER_B, [GLOBAL_BASE_B], imm=256))
        chains = CHAIN_REGS[: max(1, traits.ilp_width)]
        for index, chain in enumerate(chains):
            entry.append(Instruction.load_imm(chain, index + 1))
        self._seed_fp_chains(entry)
        ctx = _BodyContext(
            chains=list(chains),
            pointer=POINTER_A,
            store_pointer=POINTER_B,
            stride=self._stride_for_working_set(),
            pointer_chase=traits.pointer_chase if chase is None else chase,
        )
        self._emit_body(entry, self._randint(traits.dag_block_size), ctx)

        current = entry
        for _ in range(self._randint(traits.dag_diamonds)):
            current = self._emit_diamond(
                proc, name, current, ctx, self._randint(traits.dag_block_size)
            )
            self._emit_body(current, self._randint(traits.dag_block_size), ctx)
        current.append(Instruction.ret())
        return name

    def _build_switch_kernel(self, name: str) -> str:
        """A switch-like dispatch: many cases all jumping to one join block."""
        traits = self.traits
        proc = self.program.new_procedure(name)
        fanout = max(4, traits.switch_fanout)

        entry = proc.add_block(self._label(f"{name}_entry"))
        entry.append(Instruction.alu(Opcode.ADD, POINTER_A, [GLOBAL_BASE_A], imm=512))
        entry.append(Instruction.alu(Opcode.ADD, POINTER_B, [GLOBAL_BASE_B], imm=512))
        selector = SCRATCH_REGS[4]
        entry.append(Instruction.load(selector, POINTER_A, 0))
        entry.append(Instruction.alu(Opcode.AND, selector, [selector], imm=fanout - 1))
        chains = CHAIN_REGS[:2]
        for index, chain in enumerate(chains):
            entry.append(Instruction.load_imm(chain, index + 1))
        ctx = _BodyContext(
            chains=list(chains),
            pointer=POINTER_A,
            store_pointer=POINTER_B,
            stride=64,
            pointer_chase=traits.pointer_chase,
        )

        join_label = self._label(f"{name}_join")
        case_labels = [self._label(f"{name}_case{i}") for i in range(fanout)]

        # Dispatch chain: compare the selector against each case value.
        current = entry
        cmp_reg = SCRATCH_REGS[5]
        for case_index in range(fanout):
            current.append(
                Instruction.alu(Opcode.CMP_EQ, cmp_reg, [selector], imm=case_index)
            )
            current.append(Instruction.branch_nez(cmp_reg, case_labels[case_index]))
            if case_index < fanout - 1:
                current = proc.add_block(self._label(f"{name}_test{case_index + 1}"))
        current.append(Instruction.jump(case_labels[-1]))

        # Case bodies, each ending at the common join (high fan-in).
        for case_index, label in enumerate(case_labels):
            case_block = proc.add_block(label)
            self._emit_body(case_block, self._randint(traits.dag_block_size), ctx)
            case_block.append(Instruction.jump(join_label))

        join_block = proc.add_block(join_label)
        self._emit_body(join_block, self._randint(traits.dag_block_size), ctx)
        join_block.append(Instruction.ret())
        return name

    def _build_call_kernel(self, name: str, leaf_names: list[str]) -> str:
        """A loop whose body is dominated by calls to leaf procedures."""
        traits = self.traits
        rng = self.rng
        proc = self.program.new_procedure(name)
        trips = self._randint(traits.loop_trip_count)
        _, ctx = self._phase_prologue(proc, trips)

        head_label = self._label(f"{name}_loop")
        head = proc.add_block(head_label)
        self._emit_body(head, max(3, self._randint(traits.loop_body_size) // 3), ctx)

        current = head
        num_calls = rng.randint(1, max(1, min(3, len(leaf_names))))
        for _ in range(num_calls):
            current.append(Instruction.call(rng.choice(leaf_names)))
            current = proc.add_block(self._label(f"{name}_postcall"))
            self._emit_body(current, max(2, self._randint(traits.loop_body_size) // 4), ctx)

        self._emit_pointer_advance(current, ctx)
        current.append(Instruction.alu(Opcode.SUB, LOOP_COUNTER, [LOOP_COUNTER], imm=1))
        current.append(Instruction.branch_nez(LOOP_COUNTER, head_label))

        exit_block = proc.add_block(self._label(f"{name}_exit"))
        exit_block.append(Instruction.ret())
        return name

    # ------------------------------------------------------------------
    # Leaf and library procedures
    # ------------------------------------------------------------------
    def _build_leaf(self, index: int) -> str:
        """A small straight-line procedure called from kernels."""
        traits = self.traits
        rng = self.rng
        name = f"leaf_{index}"
        proc = self.program.new_procedure(name)
        block = proc.add_block(self._label(f"{name}_body"))
        size = self._randint(traits.leaf_size)
        regs = SCRATCH_REGS[:8]
        block.append(Instruction.load(regs[0], POINTER_A, 16))
        for position in range(size):
            dest = regs[position % len(regs)]
            src = regs[(position + 1) % len(regs)]
            if traits.leaf_mul_heavy and rng.random() < 0.45:
                block.append(Instruction.alu(Opcode.MUL, dest, [dest, src]))
            elif rng.random() < 0.15:
                block.append(Instruction.store(dest, POINTER_B, (position % 8) * 8))
            else:
                opcode = rng.choice(_ALU_OPCODES)
                block.append(Instruction.alu(opcode, dest, [dest, src]))
        block.append(Instruction.ret())
        return name

    def _build_library(self, index: int) -> str:
        """A library routine: executed but never analysed by the compiler."""
        name = f"lib_{index}"
        proc = self.program.new_procedure(name, is_library=True)
        block = proc.add_block(self._label(f"{name}_body"))
        regs = LIBRARY_REGS
        block.append(Instruction.load_imm(regs[0], 3))
        for position in range(12):
            dest = regs[position % len(regs)]
            src = regs[(position + 1) % len(regs)]
            block.append(Instruction.alu(Opcode.ADD, dest, [dest, src], imm=position))
        block.append(Instruction.ret())
        return name

    # ------------------------------------------------------------------
    # main
    # ------------------------------------------------------------------
    def _emit_phase_calls(
        self,
        proc: Procedure,
        current: BasicBlock,
        phase_names: list[str],
        library_names: list[str],
        tag: str = "",
    ) -> BasicBlock:
        """Emit one call per phase (plus occasional library calls)."""
        traits = self.traits
        rng = self.rng
        for phase_index, phase in enumerate(phase_names):
            current.append(Instruction.call(phase))
            current = proc.add_block(f"main_after_phase_{tag}{phase_index}")
            if library_names and rng.random() < traits.library_call_prob:
                current.append(Instruction.call(rng.choice(library_names)))
                current = proc.add_block(f"main_after_lib_{tag}{phase_index}")
        return current

    def _build_main(
        self,
        phase_names: list[str],
        library_names: list[str],
        chase_names: list[str] | None = None,
    ) -> None:
        """The driver: initialise globals, then loop over the phase procedures.

        With ``chase_names`` (the phase-flip families), each driver
        iteration selects a kernel group by a bit of the down-counting
        loop counter — ``(counter >> phase_period_shift) & 1`` — so the
        program alternates between the groups every
        ``2**phase_period_shift`` iterations, at any instruction budget.
        """
        traits = self.traits
        proc = self.program.new_procedure("main")

        init = proc.add_block("main_init")
        init.append(Instruction.load_imm(GLOBAL_BASE_A, DATA_REGION_A))
        init.append(Instruction.load_imm(GLOBAL_BASE_B, DATA_REGION_B))
        init.append(Instruction.load_imm(DRIVER_COUNTER, traits.outer_trips))

        head_label = "main_driver"
        current = proc.add_block(head_label)
        if chase_names:
            selector = Reg(30)  # spare global; phases only touch r1-r27
            current.append(
                Instruction.alu(
                    Opcode.SHR, selector, [DRIVER_COUNTER], imm=traits.phase_period_shift
                )
            )
            current.append(Instruction.alu(Opcode.AND, selector, [selector], imm=1))
            # The selector branch terminates its block (the IR's
            # single-terminator invariant — the CFG derives edges from
            # last instructions only); group A starts in the fall-through.
            current.append(Instruction.branch_nez(selector, "main_chase_group"))
            current = proc.add_block("main_loop_group")
            current = self._emit_phase_calls(
                proc, current, phase_names, library_names, tag="a"
            )
            current.append(Instruction.jump("main_latch"))
            chase_entry = proc.add_block("main_chase_group")
            current = self._emit_phase_calls(
                proc, chase_entry, chase_names, library_names, tag="b"
            )
            current = proc.add_block("main_latch")  # group B falls through
        else:
            current = self._emit_phase_calls(proc, current, phase_names, library_names)

        current.append(Instruction.alu(Opcode.SUB, DRIVER_COUNTER, [DRIVER_COUNTER], imm=1))
        current.append(Instruction.branch_nez(DRIVER_COUNTER, head_label))

        done = proc.add_block("main_done")
        done.append(Instruction.halt())
        self.program.entry = "main"


def generate_program(traits: BenchmarkTraits) -> Program:
    """Build the synthetic program described by ``traits``."""
    return SyntheticProgramGenerator(traits).build()
