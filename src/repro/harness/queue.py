"""Distributed work-queue execution over a shared cache directory.

The parallel experiment engine's process pool stops at one host.  This
module removes that ceiling with the smallest possible coordination
substrate: a **file-backed work queue** living inside the shared cache
directory itself, so any number of worker processes — on one machine or
many, over NFS — cooperate through nothing but the filesystem they
already share for results and traces (the cluster-of-commodity-hosts
model of Baker et al.'s cluster-computing white paper).

Queue file protocol
-------------------

All queue state lives under ``<cache_dir>/queue/``::

    queue/
      pending/<fingerprint>.json   jobs waiting for a worker
      leases/<fingerprint>.json    jobs being executed (mtime = heartbeat)
      done/<fingerprint>.json      completion markers (stats + counter deltas)
      poison/<fingerprint>.json    jobs set aside with a recorded reason:
                                   undecodable envelopes, or jobs that
                                   exhausted their retry budget
      workers/<worker_id>.json     per-worker claim-batch/gc counters,
                                   republished after every batch so
                                   ``--status`` sees the whole fleet

* **Envelope** — every job file is a one-object JSON envelope:
  ``{"format": 1, "kind": "simulation"|"shard", "fingerprint": ...,
  "benchmark": ..., "technique": ..., "attempts": 0, "max_attempts": 3,
  "priority": 0, "job": <base64 pickle>}``.  The human-readable fields
  make the queue greppable; the pickled job is the exact
  :class:`~repro.harness.parallel.SimulationJob` /
  :class:`~repro.harness.shard.ShardJob` the process pool already
  ships between processes.  ``attempts`` counts execution failures so
  far; ``max_attempts`` is the job's retry budget (jobs may carry their
  own ``max_attempts`` attribute, else :data:`DEFAULT_MAX_ATTEMPTS`).
  ``priority`` is the scheduling band (0–9, higher claims first;
  default 0): workers sort each claim listing by band before renaming,
  so an interactive service request overtakes a batch backfill without
  any new queue state.  Priority is transport, not identity — it never
  enters the fingerprint, lives only in the envelope JSON (file names
  stay pure fingerprints, keeping the rename choreography and
  idempotence checks untouched), and is fixed at first enqueue: a
  deduped re-submission at a different band does **not** rewrite the
  pending envelope, because an atomic republish could resurrect a
  just-claimed job and double-execute it.  Two more transport-only
  stamps ride the envelope the same way: ``enqueued_at`` (wall-clock
  publish time, which completion combines with the lease stamp into
  the enqueue→claim / claim→done latencies ``--status`` reports) and,
  when the producer runs with ``REPRO_TELEMETRY=1``, ``trace`` — the
  request id that links the driver's spans to the claiming worker's
  (see :mod:`repro.telemetry.spans` and docs/observability.md).
* **Enqueue** — write the envelope to a ``.tmp-*`` file and
  ``os.replace`` it into ``pending/`` (the same atomicity discipline as
  ``ResultCache.store``).  Enqueueing is idempotent: a fingerprint that
  is already pending, leased or done is left alone.
* **Lease** — a worker claims a job with ``os.rename(pending/f,
  leases/f)``.  Rename is atomic; when several workers race for one
  file, exactly one rename succeeds and the losers see
  ``FileNotFoundError`` and move on.  The winner rewrites the lease with
  its worker id (atomic replace) and then **heartbeats** it by touching
  the file's mtime while the simulation runs.  Claims are **batched**:
  one pending-directory listing (the expensive metadata operation on
  NFS) backs up to ``--claim-batch`` renames, and the whole batch
  heartbeats while its jobs execute sequentially (default 1 —
  worthwhile only when pending jobs vastly outnumber workers).
* **Crash recovery** — anyone (other workers, the runner) may call
  :meth:`WorkQueue.requeue_expired`: a lease whose mtime is older than
  the TTL is pushed back with ``os.rename(leases/f, pending/f)`` —
  again, exactly one reclaimer wins.  If the dead worker's job already
  has a completion marker the lease is simply dropped.
* **Complete** — the worker publishes the result through the existing
  content-addressed caches (``ResultCache.store`` for grid cells; trace
  stores happened during the run), then atomically writes
  ``done/<fingerprint>.json`` carrying the full job payload — the
  statistics and the worker's trace-cache counter deltas — and unlinks
  its lease.  Completions are **idempotent**: a job executed twice
  (a worker presumed dead that was merely slow) produces byte-identical
  payloads for the same fingerprint, and ``os.replace`` makes the last
  writer win without ever exposing a torn file.
* **Failures** — a job whose execution *raises* (as opposed to a worker
  dying) is **retried**: the worker increments the envelope's
  ``attempts`` counter and pushes the job back to ``pending/``.  A job
  that exhausts its ``max_attempts`` budget escalates to ``poison/``
  with a full record — the exception traceback, a timestamp, the
  claiming worker id and the attempt count — so ``--status`` can
  explain *why* instead of the driver wedging.  An envelope that cannot
  be decoded is poisoned immediately with the decode error recorded the
  same way.  The driver polls ``poison/`` and surfaces the reason; a
  fresh driver run consumes the poison record and retries the job from
  scratch.

Counter exactness: each marker carries the executing worker's
trace-cache hit/miss/store/eviction deltas for that job, and the runner
folds exactly one marker per job into its own cache — ``--cache-stats``
stays exact for any number of workers on any number of hosts.

Run a worker with::

    PYTHONPATH=src python -m repro.harness.queue <cache_dir> \\
        [--ttl 60] [--poll 0.2] [--max-jobs N] [--drain] [--status] \\
        [--claim-batch K] [--gc-interval 900]

``--drain`` exits once the queue has stayed empty for a grace period;
the default is to serve forever (a daemon on each grid host).  Idle
workers double as cache janitors: every ``--gc-interval`` seconds
(jittered per worker so a fleet sharing one NFS directory doesn't sweep
in lockstep) an idle worker runs the offline ``cache gc`` sweep —
orphaned temp files and expired completion markers — between polls.
"""

from __future__ import annotations

import argparse
import base64
import hashlib
import json
import os
import pickle
import random
import re
import socket
import threading
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.atomicio import publish_atomically
from repro.harness import faults
from repro.harness.cache import ResultCache, stats_from_dict
from repro.harness.faults import (
    BEST_EFFORT_RETRY_POLICY,
    DEFAULT_RETRY_POLICY,
)
from repro.harness.parallel import SimulationJob, execute_job
from repro.telemetry import spans as tracing
from repro.telemetry.metrics import MetricsRegistry, counter_property
from repro.uarch.engine import ENGINE_ENV_VAR, resolve_engine_name

#: Bump when the envelope/marker layout changes; foreign-format files
#: are poisoned (envelopes) or ignored (markers), never trusted.
QUEUE_FORMAT_VERSION = 1

#: Retry budget for jobs whose envelope (or job object) doesn't carry
#: its own ``max_attempts``: total executions allowed before a failing
#: job escalates to ``poison/`` with its last traceback recorded.
DEFAULT_MAX_ATTEMPTS = 3

#: Scheduling bands: envelopes carry ``priority`` in [MIN, MAX]; higher
#: bands are claimed first.  Values outside the range are clamped at
#: enqueue so a foreign producer can't starve the fleet with 2**31.
PRIORITY_MIN = 0
PRIORITY_MAX = 9
DEFAULT_PRIORITY = 0


def clamp_priority(priority) -> int:
    """Coerce ``priority`` into the documented band range."""
    try:
        value = int(priority)
    except (TypeError, ValueError):
        return DEFAULT_PRIORITY
    return max(PRIORITY_MIN, min(PRIORITY_MAX, value))


def _default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}-{random.randrange(16**4):04x}"


def _protocol_names(directory: Path) -> list[str]:
    """Live protocol-file names in ``directory``, from one listing.

    The queue has exactly one naming convention — ``*.json`` entries,
    dot-prefixed names being in-flight temp files — and every scan
    (claims, sweeps, status, idleness, fleet stats) must agree on it,
    so it lives in this single predicate.  A missing directory reads
    as empty.
    """
    try:
        names = [
            name
            for name in os.listdir(directory)
            if name.endswith(".json") and not name.startswith(".")
        ]
    except FileNotFoundError:
        return []
    # Chaos seam (no-op in production): a fault plan may hide entries
    # from individual listings, simulating NFS attribute-cache lag —
    # every caller of this predicate must tolerate stale listings.
    return faults.maybe_filter_names("queue.listing", directory.name, names)


def _atomic_write_json(directory: Path, path: Path, payload: dict) -> None:
    """Publish ``payload`` to ``path`` with the shared atomic discipline."""
    publish_atomically(
        path, lambda handle: json.dump(payload, handle, sort_keys=True)
    )


@dataclass
class ClaimedJob:
    """A leased job: the decoded work item plus its lease bookkeeping."""

    fingerprint: str
    kind: str
    job: object
    envelope: dict
    lease_path: Path


class WorkQueue:
    """File-backed job queue inside a shared cache directory.

    Attributes:
        cache_dir: the shared cache directory (results at the top level,
            ``traces/`` below it, ``queue/`` for this module's state).
        ttl: seconds without a heartbeat before a lease counts as dead.
        enqueued / claimed / completed / requeued / claim_batches: this
            process's traffic counters (for tests and status reports).
            Backed by the ``metrics`` registry
            (:class:`repro.telemetry.metrics.MetricsRegistry`) so one
            ``metrics.snapshot()`` renders them all; the attribute API
            is unchanged.
    """

    # This process's queue traffic, readable/writable as plain ints but
    # stored in the metrics registry (one snapshot() shape fleet-wide).
    enqueued = counter_property("enqueued")
    claimed = counter_property("claimed")
    completed = counter_property("completed")
    requeued = counter_property("requeued")
    retried = counter_property("retried")
    poisoned = counter_property("poisoned")
    claim_batches = counter_property("claim_batches")

    def __init__(self, cache_dir: str | os.PathLike, ttl: float = 60.0):
        if ttl <= 0:
            raise ValueError("ttl must be a positive number of seconds")
        self.cache_dir = Path(cache_dir)
        self.root = self.cache_dir / "queue"
        self.pending_dir = self.root / "pending"
        self.leases_dir = self.root / "leases"
        self.done_dir = self.root / "done"
        self.poison_dir = self.root / "poison"
        self.workers_dir = self.root / "workers"
        # Create the protocol directories once, up front: the rename
        # choreography (claim, requeue) assumes both endpoints exist,
        # and doing it here keeps mkdir out of the per-claim hot loop.
        for directory in (
            self.pending_dir,
            self.leases_dir,
            self.done_dir,
            self.poison_dir,
            self.workers_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        self.ttl = ttl
        # One registry for this process's queue traffic.  The named
        # counters pre-register so a snapshot taken before any traffic
        # still shows every series at zero.  ``retried``/``poisoned``
        # count failure-path traffic (jobs pushed back to pending after
        # a raised execution; jobs escalated to poison/); together with
        # ``claimed``, ``claim_batches`` (listings that yielded at
        # least one lease) gives the realised claim batch size.
        self.metrics = MetricsRegistry("queue")
        for name in (
            "enqueued",
            "claimed",
            "completed",
            "requeued",
            "retried",
            "poisoned",
            "claim_batches",
        ):
            self.metrics.counter(name)
        # Priority memo: fingerprint -> band, filled at enqueue (the
        # producer knows the band without a read) and lazily from
        # pending envelopes during claim ordering, so each worker
        # process reads any given envelope's band at most once instead
        # of once per scan.  Priority is fixed at first enqueue, so a
        # memo entry can never go stale while its file exists.
        self._priority_memo: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def pending_path(self, fingerprint: str) -> Path:
        return self.pending_dir / f"{fingerprint}.json"

    def lease_path(self, fingerprint: str) -> Path:
        return self.leases_dir / f"{fingerprint}.json"

    def done_path(self, fingerprint: str) -> Path:
        return self.done_dir / f"{fingerprint}.json"

    def poison_path(self, fingerprint: str) -> Path:
        return self.poison_dir / f"{fingerprint}.json"

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def enqueue(
        self,
        job,
        kind: Optional[str] = None,
        priority: Optional[int] = None,
    ) -> str:
        """Publish ``job`` for any worker to claim; idempotent.

        ``job`` must expose ``fingerprint()`` and pickle cleanly (both
        :class:`SimulationJob` and :class:`~repro.harness.shard.ShardJob`
        do).  A fingerprint that is already pending, leased or
        successfully completed is left untouched, so re-running a driver
        against a half-served queue never duplicates work.  Failure
        residue is retryable, not terminal: an error marker or a poison
        record for the fingerprint is consumed here (deleted) and the
        job queued afresh with a fresh ``attempts`` counter — otherwise
        one bad spell (disk full, OOM, a since-fixed bug) would poison
        its fingerprint forever.

        ``priority`` (explicit argument, else the job's own ``priority``
        attribute, else :data:`DEFAULT_PRIORITY`) selects the scheduling
        band, clamped to [:data:`PRIORITY_MIN`, :data:`PRIORITY_MAX`].
        The band is fixed at first enqueue: when the fingerprint is
        already queued the call returns without touching the envelope —
        republishing a pending file to bump its band could race a claim
        rename and resurrect a just-leased job into double execution.
        """
        if kind is None:
            kind = "simulation" if isinstance(job, SimulationJob) else "shard"
        fingerprint = job.fingerprint()
        marker = self.done_marker(fingerprint)
        if marker is not None:
            if "error" not in marker:
                return fingerprint
            try:
                os.unlink(self.done_path(fingerprint))
            except OSError:  # pragma: no cover - concurrent retry
                pass
        if self.poison_path(fingerprint).exists():
            try:
                os.unlink(self.poison_path(fingerprint))
            except OSError:  # pragma: no cover - concurrent retry
                pass
        if (
            self.lease_path(fingerprint).exists()
            or self.pending_path(fingerprint).exists()
        ):
            return fingerprint
        max_attempts = getattr(job, "max_attempts", None) or DEFAULT_MAX_ATTEMPTS
        if priority is None:
            priority = getattr(job, "priority", None)
        band = clamp_priority(priority if priority is not None else DEFAULT_PRIORITY)
        envelope = {
            "format": QUEUE_FORMAT_VERSION,
            "kind": kind,
            "fingerprint": fingerprint,
            "benchmark": getattr(job, "benchmark", ""),
            "technique": getattr(job, "technique", ""),
            "attempts": 0,
            "max_attempts": int(max_attempts),
            "priority": band,
            "enqueued_at": time.time(),
            "job": base64.b64encode(pickle.dumps(job)).decode("ascii"),
        }
        # Trace propagation (transport, not identity — like priority,
        # fixed at first enqueue and never part of the fingerprint): the
        # producer's active trace id rides the envelope so the claiming
        # worker's spans land under the same request id.
        trace = tracing.current_trace()
        if trace is not None:
            envelope["trace"] = trace
        with tracing.span(
            "queue.enqueue",
            fingerprint=fingerprint,
            benchmark=envelope["benchmark"],
            technique=envelope["technique"],
            priority=band,
        ):
            DEFAULT_RETRY_POLICY.call(
                lambda: _atomic_write_json(
                    self.pending_dir, self.pending_path(fingerprint), envelope
                ),
                key=f"enqueue/{fingerprint}",
            )
        self.enqueued += 1
        self._priority_memo[fingerprint] = band
        return fingerprint

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def claim(self, worker_id: Optional[str] = None) -> Optional[ClaimedJob]:
        """Atomically lease one pending job; None when nothing is claimable."""
        claims = self.claim_batch(worker_id, limit=1)
        return claims[0] if claims else None

    def claim_batch(
        self, worker_id: Optional[str] = None, limit: int = 1
    ) -> list[ClaimedJob]:
        """Lease up to ``limit`` pending jobs from one directory listing.

        A large grid served over NFS pays one ``listdir`` (the expensive
        metadata operation) per claim attempt; batching amortises that
        single scan over up to ``limit`` atomic renames, cutting
        per-job filesystem round-trips by the batch size.  Candidates
        are shuffled and then **stably sorted by priority band**
        (higher first): within one band a fleet of workers scanning the
        same directory mostly avoids colliding on one file, while
        across bands every worker agrees that interactive work is
        claimed before backfill; the rename makes any remaining
        collision safe (one winner per file).  Band reads are memoized
        per fingerprint, so ordering costs each worker at most one
        envelope read per job over its lifetime, not one per scan.

        Callers executing a batch sequentially must keep every held
        lease heartbeating while earlier jobs run
        (:func:`process_claimed_jobs` does), or the later leases expire
        and get re-leased — harmless (completions are idempotent) but
        wasteful.
        """
        if limit < 1:
            raise ValueError("claim batch limit must be a positive integer")
        worker_id = worker_id or _default_worker_id()
        claims: list[ClaimedJob] = []
        names = _protocol_names(self.pending_dir)
        random.shuffle(names)
        # Stable sort after the shuffle: strict priority order across
        # bands, randomised contention-avoidance order within one.
        names.sort(key=self._pending_priority, reverse=True)
        for name in names:
            if len(claims) >= limit:
                break
            pending = self.pending_dir / name
            lease = self.leases_dir / name
            try:
                os.rename(pending, lease)
            except FileNotFoundError:
                continue  # another worker won the race
            except OSError:
                continue
            # Rename preserves the pending file's mtime, which may
            # already be TTL-stale for a job that queued a while; start
            # the heartbeat clock *now*, before decoding, so a sweeper
            # cannot reclaim the lease out from under the winner.
            try:
                os.utime(lease)
            except OSError:  # pragma: no cover - reclaimed in the gap
                continue
            with tracing.span("queue.claim", worker=worker_id) as claim_span:
                claimed = self._decode_lease(lease, worker_id)
                if claimed is not None:
                    # The trace id lives in the envelope just decoded;
                    # deliver it late so the claim span joins the
                    # producer's request trace.
                    claim_span.set(
                        trace=claimed.envelope.get("trace"),
                        fingerprint=claimed.fingerprint,
                        priority=claimed.envelope.get("priority"),
                    )
            if claimed is not None:
                self.claimed += 1
                claims.append(claimed)
        if claims:
            self.claim_batches += 1
        return claims

    def _pending_priority(self, name: str) -> int:
        """The priority band of pending file ``name`` (memoized).

        A file that vanished mid-read (another worker's claim rename
        won) or carries no readable band sorts as the default band and
        is *not* memoized — the next scan, if the file reappears via a
        retry re-enqueue, reads it fresh.
        """
        fingerprint = name[: -len(".json")] if name.endswith(".json") else name
        memo = self._priority_memo.get(fingerprint)
        if memo is not None:
            return memo
        try:
            envelope = json.loads(
                (self.pending_dir / name).read_text(encoding="utf-8")
            )
            band = clamp_priority(envelope.get("priority", DEFAULT_PRIORITY))
        except (OSError, ValueError, TypeError, json.JSONDecodeError):
            return DEFAULT_PRIORITY
        self._priority_memo[fingerprint] = band
        return band

    def _decode_lease(self, lease: Path, worker_id: str) -> Optional[ClaimedJob]:
        """Decode a freshly won lease, poisoning undecodable envelopes."""
        try:
            envelope = json.loads(lease.read_text(encoding="utf-8"))
            if envelope.get("format") != QUEUE_FORMAT_VERSION:
                raise ValueError("foreign queue envelope format")
            fingerprint = envelope["fingerprint"]
            kind = envelope["kind"]
            if kind not in ("simulation", "shard"):
                raise ValueError(f"unknown queue job kind {kind!r}")
            job = pickle.loads(base64.b64decode(envelope["job"]))
        # Unpickling a foreign envelope can raise arbitrary types; any decode
        # failure must poison the file, never crash the worker and wedge the
        # queue.
        # repro: allow[exception-hygiene] unbounded unpickle surface
        except Exception as error:
            self._poison_lease(
                lease,
                reason=f"undecodable envelope: {error!r}",
                worker_id=worker_id,
            )
            return None
        # Stamp the winner's identity (observability) and refresh the
        # heartbeat; the utime right after the winning rename keeps the
        # lease fresh through this decode, so only an executing worker
        # that later stops heartbeating can lose it.  Best-effort with a
        # drop fallback: losing the stamp costs observability only — the
        # in-memory envelope still carries it for the marker.
        envelope["worker"] = worker_id
        envelope["leased_at"] = time.time()
        BEST_EFFORT_RETRY_POLICY.call(
            lambda: _atomic_write_json(self.leases_dir, lease, envelope),
            key=f"lease-stamp/{fingerprint}",
            on_exhausted="drop",
        )
        return ClaimedJob(
            fingerprint=fingerprint,
            kind=kind,
            job=job,
            envelope=envelope,
            lease_path=lease,
        )

    def _poison_lease(
        self,
        lease: Path,
        reason: str,
        worker_id: str,
        envelope: Optional[dict] = None,
    ) -> None:
        """Move a held lease to ``poison/`` with the reason recorded.

        The record keeps what it can of the original envelope (raw text
        when it never decoded) plus the why/who/when that lets
        ``--status`` explain the poisoning.  Publication is retried;
        when even that fails the lease is moved verbatim — an
        unexplained poison file still beats a wedged queue.
        """
        record = {
            "format": QUEUE_FORMAT_VERSION,
            "fingerprint": lease.name[: -len(".json")],
            "poison_reason": reason,
            "worker": worker_id,
            "poisoned_at": time.time(),
        }
        if envelope is not None:
            for field in ("kind", "benchmark", "technique", "attempts", "max_attempts"):
                if field in envelope:
                    record[field] = envelope[field]
        else:
            try:
                record["raw"] = lease.read_text(encoding="utf-8", errors="replace")
            except OSError:  # pragma: no cover - lease raced away
                pass
        try:
            DEFAULT_RETRY_POLICY.call(
                lambda: _atomic_write_json(
                    self.poison_dir, self.poison_dir / lease.name, record
                ),
                key=f"poison/{lease.name}",
            )
        except OSError:
            try:
                os.replace(lease, self.poison_dir / lease.name)
            except OSError:
                pass
            else:
                self.poisoned += 1
            return
        try:
            os.unlink(lease)
        except OSError:  # pragma: no cover - lease raced away
            pass
        self.poisoned += 1

    def heartbeat(self, claimed: ClaimedJob) -> bool:
        """Refresh the lease's liveness; False when the lease was lost."""
        # Chaos seam (no-op in production): a stalled heartbeat skips
        # the utime but reports success — exactly what a worker wedged
        # in an NFS write looks like to the rest of the fleet.
        if faults.maybe_stall("queue.heartbeat", claimed.fingerprint):
            return True
        try:
            os.utime(claimed.lease_path)
            return True
        except OSError:
            return False

    def release(self, claimed: ClaimedJob) -> None:
        """Push a claimed-but-unfinished job back to pending."""
        try:
            os.rename(claimed.lease_path, self.pending_dir / claimed.lease_path.name)
        except OSError:
            pass

    def fail(self, claimed: ClaimedJob, error: str, worker_id: str = "") -> bool:
        """Record a raised execution: retry the job or escalate to poison.

        While ``attempts`` (executions that raised) is below the
        envelope's ``max_attempts`` budget the job goes back to
        ``pending/`` with the counter incremented — the rewrite lands on
        the *held lease* first and the atomic rename then makes exactly
        one mover win, so a concurrent TTL sweeper can never resurrect a
        stale copy.  At budget the job escalates to ``poison/`` with the
        final traceback, worker id and timestamp recorded.  Returns True
        when the job was re-queued for another try.
        """
        envelope = dict(claimed.envelope)
        attempts = int(envelope.get("attempts", 0)) + 1
        budget = int(envelope.get("max_attempts", 0)) or DEFAULT_MAX_ATTEMPTS
        envelope["attempts"] = attempts
        envelope["last_error"] = error
        if attempts >= budget:
            self._poison_lease(
                claimed.lease_path,
                reason=error,
                worker_id=worker_id,
                envelope=envelope,
            )
            return False
        BEST_EFFORT_RETRY_POLICY.call(
            lambda: _atomic_write_json(
                self.leases_dir, claimed.lease_path, envelope
            ),
            key=f"fail/{claimed.fingerprint}",
            on_exhausted="drop",
        )
        self.release(claimed)
        self.retried += 1
        return True

    def complete(
        self,
        claimed: ClaimedJob,
        payload: Optional[dict],
        worker_id: str = "",
        error: Optional[str] = None,
    ) -> None:
        """Publish the job's completion marker and drop the lease.

        Duplicate completions (a re-leased job finishing twice) are
        harmless: identical fingerprints produce identical payloads and
        the atomic replace makes the last writer win.
        """
        marker = {
            "format": QUEUE_FORMAT_VERSION,
            "fingerprint": claimed.fingerprint,
            "kind": claimed.kind,
            "benchmark": claimed.envelope.get("benchmark", ""),
            "technique": claimed.envelope.get("technique", ""),
            "worker": worker_id,
            "payload": payload,
        }
        if error is not None:
            marker["error"] = error
        # Lifecycle intervals from the envelope's transport stamps:
        # enqueue→claim is backlog pressure (how long the job waited
        # for a lease), claim→done is service time.  They ride the
        # completion span so ``--status`` can report fleet latency
        # percentiles from span files alone.
        now = time.time()
        enqueued_at = claimed.envelope.get("enqueued_at")
        leased_at = claimed.envelope.get("leased_at")
        wait = (
            round(leased_at - enqueued_at, 6)
            if isinstance(enqueued_at, (int, float))
            and isinstance(leased_at, (int, float))
            else None
        )
        service = (
            round(now - leased_at, 6)
            if isinstance(leased_at, (int, float))
            else None
        )
        # The marker is the driver's only completion signal: retried
        # under the shared policy so a transient ENOSPC/EIO (or an
        # injected crash-after-replace, which re-publishes
        # idempotently) never turns finished work into a lost job.
        with tracing.span(
            "queue.complete",
            trace=claimed.envelope.get("trace"),
            fingerprint=claimed.fingerprint,
            worker=worker_id,
            enqueue_to_claim=wait,
            claim_to_done=service,
        ):
            DEFAULT_RETRY_POLICY.call(
                lambda: _atomic_write_json(
                    self.done_dir, self.done_path(claimed.fingerprint), marker
                ),
                key=f"complete/{claimed.fingerprint}",
            )
        self.completed += 1
        try:
            os.unlink(claimed.lease_path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Shared maintenance
    # ------------------------------------------------------------------
    def requeue_expired(self, now: Optional[float] = None) -> list[str]:
        """Re-lease jobs whose worker stopped heartbeating; return them.

        A lease older than the TTL either belongs to a dead worker (its
        job must run again) or to one that already finished (drop the
        lease).  The rename back to ``pending/`` is atomic, so when many
        processes sweep concurrently each expired lease is requeued
        exactly once.  TTL re-leases do *not* consume the job's
        ``attempts`` budget — slow is not failed, and a rewrite here
        would race the one-winner rename; only executions that raise
        count against ``max_attempts``.
        """
        now = time.time() if now is None else now
        requeued: list[str] = []
        for name in _protocol_names(self.leases_dir):
            lease = self.leases_dir / name
            try:
                age = now - lease.stat().st_mtime
            except OSError:
                continue
            if age <= self.ttl:
                continue
            fingerprint = name[: -len(".json")]
            if self.done_path(fingerprint).exists():
                try:
                    os.unlink(lease)
                except OSError:
                    pass
                continue
            try:
                os.rename(lease, self.pending_dir / name)
            except OSError:
                continue  # another sweeper won
            requeued.append(fingerprint)
            self.requeued += 1
        return requeued

    def list_done(self) -> set[str]:
        """Fingerprints with a completion marker — one directory listing.

        The driver's wait loop calls this every poll tick and opens only
        the markers that newly appeared, instead of attempting one file
        read per outstanding fingerprint per tick (which multiplies into
        thousands of per-second metadata operations on the NFS-mounted
        directories this queue targets).
        """
        return {
            name[: -len(".json")] for name in _protocol_names(self.done_dir)
        }

    def youngest_lease_age(self) -> Optional[float]:
        """Age of the most recently heartbeaten lease; None when none.

        Drops towards zero whenever any worker heartbeats or claims —
        the liveness signal behind the driver's stall timeout — at the
        cost of one directory listing plus one stat per lease.
        """
        youngest: Optional[float] = None
        now = time.time()
        for name in _protocol_names(self.leases_dir):
            try:
                age = now - (self.leases_dir / name).stat().st_mtime
            except OSError:
                continue
            youngest = age if youngest is None else min(youngest, age)
        return youngest

    def poison_record(self, fingerprint: str) -> Optional[dict]:
        """The poison record for ``fingerprint``, or None.

        A legacy or truncated poison file (one moved verbatim because
        even the record publication failed) reads as a minimal record
        rather than None — the *existence* of the file is the signal;
        the recorded reason is best-effort observability on top.
        """
        path = self.poison_path(fingerprint)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError):
            if path.exists():
                return {"fingerprint": fingerprint, "poison_reason": "unrecorded"}
            return None
        except OSError:
            return None
        if not isinstance(record, dict) or "poison_reason" not in record:
            return {"fingerprint": fingerprint, "poison_reason": "unrecorded"}
        return record

    def list_poisoned(self) -> set[str]:
        """Fingerprints currently set aside in ``poison/``."""
        return {
            name[: -len(".json")] for name in _protocol_names(self.poison_dir)
        }

    def done_marker(self, fingerprint: str) -> Optional[dict]:
        """The completion marker for ``fingerprint``, or None.

        A malformed or foreign marker reads as None — the job will be
        waited on (and eventually re-leased), never crashed on.
        """
        try:
            marker = json.loads(
                self.done_path(fingerprint).read_text(encoding="utf-8")
            )
        except (FileNotFoundError, OSError, json.JSONDecodeError):
            return None
        if not isinstance(marker, dict) or marker.get("format") != QUEUE_FORMAT_VERSION:
            return None
        return marker

    def status(self) -> dict:
        """Pending/leased/done counts plus lease-age extremes.

        ``oldest_lease_age`` spots dying workers (it approaches the TTL
        as heartbeats stop); ``youngest_lease_age`` drops whenever *any*
        worker heartbeats, which the driver uses as a liveness signal
        for its stall timeout.
        """
        def _count(directory: Path) -> int:
            return len(_protocol_names(directory))

        oldest: Optional[float] = None
        youngest: Optional[float] = None
        now = time.time()
        for name in _protocol_names(self.leases_dir):
            try:
                age = now - (self.leases_dir / name).stat().st_mtime
            except OSError:
                continue
            oldest = age if oldest is None else max(oldest, age)
            youngest = age if youngest is None else min(youngest, age)
        # Per-job poison explanations: why, who, when — so one --status
        # query answers "what happened to my job" without grepping the
        # queue directory by hand.
        poison: list[dict] = []
        for fingerprint in sorted(self.list_poisoned()):
            record = self.poison_record(fingerprint) or {}
            poison.append(
                {
                    "fingerprint": fingerprint,
                    "reason": str(record.get("poison_reason", "unrecorded")),
                    "worker": record.get("worker", ""),
                    "poisoned_at": record.get("poisoned_at"),
                    "attempts": record.get("attempts"),
                }
            )
        # Pending work broken down by scheduling band (band -> count,
        # bands with no pending jobs omitted): one glance answers
        # whether the backlog is interactive traffic or batch backfill.
        pending_names = _protocol_names(self.pending_dir)
        pending_by_priority: dict[str, int] = {}
        for name in pending_names:
            band = str(self._pending_priority(name))
            pending_by_priority[band] = pending_by_priority.get(band, 0) + 1
        return {
            "directory": str(self.root),
            "pending": len(pending_names),
            "pending_by_priority": pending_by_priority,
            "leased": _count(self.leases_dir),
            "done": _count(self.done_dir),
            "poisoned": _count(self.poison_dir),
            "poison": poison,
            "oldest_lease_age": oldest,
            "youngest_lease_age": youngest,
            "ttl": self.ttl,
            # Jobs leased by this WorkQueue object, the listings that
            # produced them, and the realised batch size those imply.
            "claims_this_process": {
                "claimed": self.claimed,
                "claim_batches": self.claim_batches,
                "mean_batch_size": (
                    round(self.claimed / self.claim_batches, 2)
                    if self.claim_batches
                    else 0.0
                ),
            },
            # Fleet-wide claim-batch/gc stats, aggregated from the
            # queue/workers/ files each worker publishes after every
            # batch — this is what a `--status` query from another
            # process or host actually observes.
            "workers": self.worker_stats(),
            # Span-derived latency percentiles (enqueue→claim backlog
            # pressure, claim→done service time) from the telemetry
            # plane's published span files, plus this process's metrics
            # registry in the one fleet-wide snapshot() shape.  The
            # latency section is all-None until some producer ran with
            # REPRO_TELEMETRY=1 — the queue itself works identically
            # either way.
            "telemetry": {
                "metrics": self.metrics.snapshot(),
                "latency": tracing.queue_latency_summary(self.cache_dir),
            },
        }

    def worker_stats(self) -> dict:
        """Aggregate the per-worker stats files under ``queue/workers/``.

        Malformed or foreign files are skipped, never crashed on; stale
        files from dead workers linger until ``cache gc`` expires them,
        so the totals describe recent fleet activity, not a live roster.
        """
        totals = {
            "workers": 0,
            "claimed": 0,
            "claim_batches": 0,
            "jobs_done": 0,
            "jobs_failed": 0,
            "gc_sweeps": 0,
        }
        # Per-host rollup of the same counters: stats files are tagged
        # with the publishing worker's hostname, so a fleet spread over
        # NFS decomposes into which *machines* are sweeping and
        # claiming, not just process-level totals.  Files from before
        # the host tag aggregate under "" (unknown host).
        hosts: dict[str, dict] = {}
        for name in _protocol_names(self.workers_dir):
            try:
                payload = json.loads(
                    (self.workers_dir / name).read_text(encoding="utf-8")
                )
                if payload.get("format") != QUEUE_FORMAT_VERSION:
                    continue
                claimed = int(payload.get("claimed", 0))
                batches = int(payload.get("claim_batches", 0))
                jobs_done = int(payload.get("jobs_done", 0))
                jobs_failed = int(payload.get("jobs_failed", 0))
                gc_sweeps = int(payload.get("gc_sweeps", 0))
                host = str(payload.get("host", ""))
                probes = payload.get("probes")
                probes = probes if isinstance(probes, dict) else {}
                preferred = payload.get("preferred_engine")
            except (OSError, ValueError, TypeError, json.JSONDecodeError):
                continue
            totals["workers"] += 1
            totals["claimed"] += claimed
            totals["claim_batches"] += batches
            totals["jobs_done"] += jobs_done
            totals["jobs_failed"] += jobs_failed
            totals["gc_sweeps"] += gc_sweeps
            per_host = hosts.setdefault(
                host,
                {
                    "workers": 0,
                    "claimed": 0,
                    "jobs_done": 0,
                    "jobs_failed": 0,
                    "gc_sweeps": 0,
                    # Per-kernel throughput on this host (best probe
                    # seen across its workers) and the kernels those
                    # workers resolved to — the heterogeneous-placement
                    # view of the fleet.
                    "probes": {},
                    "preferred_engines": [],
                },
            )
            per_host["workers"] += 1
            per_host["claimed"] += claimed
            per_host["jobs_done"] += jobs_done
            per_host["jobs_failed"] += jobs_failed
            per_host["gc_sweeps"] += gc_sweeps
            for engine, rate in sorted(probes.items()):
                if isinstance(rate, (int, float)):
                    best = per_host["probes"].get(engine)
                    if best is None or rate > best:
                        per_host["probes"][str(engine)] = float(rate)
            if (
                isinstance(preferred, str)
                and preferred not in per_host["preferred_engines"]
            ):
                per_host["preferred_engines"].append(preferred)
                per_host["preferred_engines"].sort()
        totals["mean_batch_size"] = (
            round(totals["claimed"] / totals["claim_batches"], 2)
            if totals["claim_batches"]
            else 0.0
        )
        totals["hosts"] = hosts
        return totals

    def is_idle(self) -> bool:
        """True when nothing is pending and nothing is leased.

        Polled by every drain worker each tick, so it lists exactly the
        two directories it needs — never the full :meth:`status` report
        (whose fleet-stats aggregation reads one file per worker).
        """
        return not _protocol_names(self.pending_dir) and not _protocol_names(
            self.leases_dir
        )


# ----------------------------------------------------------------------
# Job execution (shared by workers and the runner's assist path)
# ----------------------------------------------------------------------
def execute_queue_job(claimed: ClaimedJob) -> dict:
    """Run one claimed job and return its payload dict.

    Job-shape dispatch lives in
    :func:`repro.harness.parallel.execute_job` — the same dispatcher the
    process pool uses — so the queue path can never diverge from the
    pool path; unknown envelope kinds were already poisoned at decode.
    """
    return execute_job(claimed.job)


def _execute_and_complete(
    queue: WorkQueue, claimed: ClaimedJob, worker_id: str
) -> bool:
    """Execute one claimed job and publish its marker (no heartbeat).

    Grid-cell results are stored into the shared :class:`ResultCache` so
    later runs hit the cache without consulting the queue at all; the
    completion marker additionally carries the full payload so the
    driver is immune to cache eviction races.  Returns True on success,
    False when the job raised — a raised job is pushed back to
    ``pending/`` with its ``attempts`` counter bumped, or escalated to
    ``poison/`` with the traceback once the budget is spent, so the
    driver either gets a retried success or a recorded reason, never a
    silent hang.
    """
    # Chaos seam (no-op outside death-enabled plans): an injected
    # worker death exits here, mid-job, leaving a heartbeating lease
    # that goes stale — the TTL re-lease path under test.
    faults.maybe_die(claimed.fingerprint)
    try:
        # The replay span records which engine actually executed the
        # job: an unpinned job (engine=None) resolves through
        # REPRO_REPLAY_KERNEL at simulate() time, which the probe may
        # have pointed at this host's fastest kernel.
        with tracing.span(
            "worker.replay",
            trace=claimed.envelope.get("trace"),
            fingerprint=claimed.fingerprint,
            benchmark=claimed.envelope.get("benchmark", ""),
            technique=claimed.envelope.get("technique", ""),
            worker=worker_id,
            engine=resolve_engine_name(getattr(claimed.job, "engine", None)),
        ):
            payload = execute_queue_job(claimed)
    # Job execution runs arbitrary simulation code; the contract is
    # retry-then-poison for *any* failure so the driver surfaces it
    # instead of waiting forever.
    # repro: allow[exception-hygiene] unbounded job-code surface
    except Exception:
        queue.fail(claimed, traceback.format_exc(), worker_id)
        return False
    try:
        if claimed.kind == "simulation":
            ResultCache(queue.cache_dir).store(
                claimed.fingerprint,
                stats_from_dict(payload["stats"]),
                benchmark=claimed.envelope.get("benchmark", ""),
                technique=claimed.envelope.get("technique", ""),
            )
        queue.complete(claimed, payload, worker_id)
    except OSError:
        # Even the retried marker publication gave up (persistent
        # ENOSPC/EIO, or an exceptionally hostile fault plan): treat it
        # as a failed attempt.  Re-execution is deterministic, so the
        # retry re-derives the identical payload and publishes it when
        # the storm passes — and the poison escalation still bounds the
        # worst case with a recorded reason.
        queue.fail(claimed, traceback.format_exc(), worker_id)
        return False
    return True


def process_claimed_jobs(
    queue: WorkQueue, claims: list[ClaimedJob], worker_id: str
) -> tuple[int, int]:
    """Execute a batch of claimed jobs under one shared heartbeat.

    A background thread heartbeats **every lease still held by the
    batch** while jobs execute sequentially (simulations take
    arbitrarily long; the TTL should not have to) — without this, the
    later jobs of a claim batch would expire and be re-leased elsewhere
    while the first one runs.  A single lost lease never stops the
    beater: completions are idempotent, so the worst case of a reclaim
    is duplicated work, not a wrong result.

    Returns ``(succeeded, failed)``.
    """
    stop = threading.Event()
    lock = threading.Lock()
    held = list(claims)
    interval = max(0.05, queue.ttl / 4.0)

    def _beat() -> None:
        while not stop.wait(interval):
            with lock:
                current = list(held)
            for claim in current:
                queue.heartbeat(claim)

    beater = threading.Thread(target=_beat, daemon=True)
    beater.start()
    succeeded = failed = 0
    try:
        for claimed in claims:
            if _execute_and_complete(queue, claimed, worker_id):
                succeeded += 1
            else:
                failed += 1
            with lock:
                held.remove(claimed)
    finally:
        stop.set()
        beater.join()
    return succeeded, failed


def process_claimed_job(
    queue: WorkQueue, claimed: ClaimedJob, worker_id: str
) -> bool:
    """Execute, publish and complete one claimed job (heartbeated).

    The single-job entry the driver's assist path uses; a batch of one.
    """
    succeeded, _ = process_claimed_jobs(queue, [claimed], worker_id)
    return succeeded == 1


class QueueWorker:
    """The claim/execute/complete loop one worker process runs.

    Attributes:
        claim_batch: jobs leased per directory listing (single scan, up
            to this many renames); the whole batch heartbeats while its
            jobs execute sequentially.  Default 1: batching amortises
            the listing only when pending jobs vastly outnumber
            workers — on a small grid a worker hoarding a batch
            serialises jobs its idle peers could have run (measured
            ~75% wall-clock regression on the 6-cell queue-grid bench
            at batch 4), so larger batches are opt-in for large grids.
        gc_interval: idle-time ``cache gc`` sweep period in seconds
            (None/0 disables).  The actual period is jittered so a fleet
            of workers sharing one NFS cache directory doesn't sweep it
            in lockstep, and the first sweep lands at a random fraction
            of the period to desynchronise hosts started together.
        gc_sweeps: sweeps this worker has run (tests, exit summary).
        probe_interval: per-kernel throughput probe refresh period in
            seconds (None/0 disables probing).  When enabled the worker
            calibrates every registered replay engine at startup and on
            a jittered refresh (:mod:`repro.telemetry.probes`),
            publishes the measured ``cycles_per_second`` per kernel in
            its stats file, and — unless the operator pinned
            ``REPRO_REPLAY_KERNEL`` — makes the fastest kernel this
            process's engine default, so unpinned claimed jobs execute
            on the host's best kernel.  Bit-identity is untouched:
            engines never enter fingerprints, so a result replayed on
            any kernel is a cache hit for every other.
        probes: last calibration, ``{engine: cycles_per_second}``.
        preferred_engine: fastest probed engine (None before a probe).
    """

    #: Upper jitter fraction applied to each worker's gc period.
    GC_JITTER = 0.25

    def __init__(
        self,
        queue: WorkQueue,
        worker_id: Optional[str] = None,
        poll_interval: float = 0.2,
        max_jobs: Optional[int] = None,
        drain: bool = False,
        drain_grace: float = 1.0,
        claim_batch: int = 1,
        gc_interval: Optional[float] = None,
        probe_interval: Optional[float] = None,
    ):
        if claim_batch < 1:
            raise ValueError("claim_batch must be a positive integer")
        self.queue = queue
        self.worker_id = worker_id or _default_worker_id()
        self.poll_interval = poll_interval
        self.max_jobs = max_jobs
        self.drain = drain
        self.drain_grace = drain_grace
        self.claim_batch = claim_batch
        self.gc_interval = gc_interval or None
        self.jobs_done = 0
        self.jobs_failed = 0
        self.gc_sweeps = 0
        self._next_gc = (
            time.time() + self.gc_interval * random.uniform(0.1, 1.0 + self.GC_JITTER)
            if self.gc_interval
            else None
        )
        self.probe_interval = probe_interval or None
        self.probes: dict[str, float] = {}
        self.preferred_engine: Optional[str] = None
        # An operator pin (REPRO_REPLAY_KERNEL in the environment, e.g.
        # exported by --engine on the CLIs) always outranks the probe;
        # decide once at startup so this worker's own auto-pick export
        # is never mistaken for a pin when the probe refreshes.
        self._engine_pinned = ENGINE_ENV_VAR in os.environ
        # 0.0 sentinel: probe immediately on the first run() iteration.
        self._next_probe = 0.0 if self.probe_interval else None

    def _publish_stats(self) -> None:
        """Publish this worker's counters to ``queue/workers/<id>.json``.

        The claim/gc counters live in process memory, so a ``--status``
        query from another process (or host) could never see them;
        publishing them into the queue directory after every batch makes
        claim-batch efficiency fleet-observable.  Stale files from dead
        workers expire via ``cache gc`` like consumed completion
        markers.  Best-effort: a stats write must never fail a worker.
        """
        queue = self.queue
        payload = {
            "format": QUEUE_FORMAT_VERSION,
            "worker": self.worker_id,
            "host": socket.gethostname(),
            "claimed": queue.claimed,
            "claim_batches": queue.claim_batches,
            "jobs_done": self.jobs_done,
            "jobs_failed": self.jobs_failed,
            "gc_sweeps": self.gc_sweeps,
            # Heterogeneous-fleet placement data: the last calibration's
            # cycles/second per replay engine and the kernel this worker
            # resolved to — empty/None until a probe runs.
            "probes": self.probes,
            "preferred_engine": self.preferred_engine,
            "updated_at": time.time(),
        }
        # The id is operator-supplied (--worker-id) and becomes a file
        # name: strip path separators and friends so an id like
        # "rack1/host7" publishes instead of silently failing — or
        # worse, escaping into a sibling protocol directory.  When the
        # rewrite changed anything, a short digest of the raw id keeps
        # distinct ids from clobbering one stats file ("rack1/host7"
        # vs "rack1 host7" would otherwise collide on rack1-host7).
        safe_id = (
            re.sub(r"[^A-Za-z0-9._-]", "-", self.worker_id).lstrip(".")
            or "worker"
        )
        if safe_id != self.worker_id:
            digest = hashlib.sha256(self.worker_id.encode("utf-8"))
            safe_id = f"{safe_id}-{digest.hexdigest()[:8]}"
        # Drop-after-budget: a stats file is pure observability, so a
        # persistently hostile shared directory (ENOSPC, EIO, read-only
        # remount) costs one stale fleet entry, never a dead worker.
        BEST_EFFORT_RETRY_POLICY.call(
            lambda: _atomic_write_json(
                queue.workers_dir,
                queue.workers_dir / f"{safe_id}.json",
                payload,
            ),
            key=f"worker-stats/{safe_id}",
            on_exhausted="drop",
        )

    def _maybe_gc(self, now: float) -> None:
        """Run an idle-time cache gc sweep when the jittered period lapses.

        Reuses the offline ``python -m repro.harness.cache gc`` internals
        (orphaned ``.tmp-*`` writer files, expired completion markers;
        live protocol files are never touched).  A sweep failure must
        never kill a worker — the cache directory may be shared with
        hosts mid-eviction.
        """
        if self._next_gc is None or now < self._next_gc:
            return
        from repro.harness.cache import gc_cache_tree

        def _sweep() -> None:
            gc_cache_tree(self.queue.cache_dir)
            self.gc_sweeps += 1
            self._publish_stats()

        # Drop-after-budget: the sweep is opportunistic janitor work —
        # a directory mid-eviction on another host retries briefly,
        # then waits for the next jittered period.
        BEST_EFFORT_RETRY_POLICY.call(
            _sweep, key=f"gc/{self.worker_id}", on_exhausted="drop"
        )
        self._next_gc = now + self.gc_interval * random.uniform(
            1.0, 1.0 + self.GC_JITTER
        )

    def _maybe_probe(self, now: float) -> None:
        """Calibrate per-kernel throughput when the probe period lapses.

        Runs the short seeded replay of :mod:`repro.telemetry.probes`
        for every registered engine, publishes the rates into this
        worker's stats file, and points ``REPRO_REPLAY_KERNEL`` at the
        fastest kernel (skipped when the operator pinned one), so
        subsequently claimed unpinned jobs execute on it.  The refresh
        is jittered like the gc sweep so a fleet doesn't calibrate in
        lockstep.  A probe must never take the worker down — it runs
        real simulation code, so any failure just skips this refresh.
        """
        if self._next_probe is None or now < self._next_probe:
            return
        from repro.telemetry import probes as kernel_probes

        try:
            rates = kernel_probes.calibrate_engines()
        # Calibration runs arbitrary engine code (and a kernel may be
        # broken on exactly this host); a failed probe costs placement
        # data, never the worker.
        # repro: allow[exception-hygiene] unbounded engine-code surface
        except Exception:
            rates = {}
        if rates:
            self.probes = rates
            fastest = kernel_probes.fastest_engine(rates)
            self.preferred_engine = fastest
            if fastest is not None and not self._engine_pinned:
                os.environ[ENGINE_ENV_VAR] = fastest
            self._publish_stats()
        self._next_probe = now + self.probe_interval * random.uniform(
            1.0, 1.0 + self.GC_JITTER
        )

    def run(self) -> int:
        """Serve the queue; returns the number of jobs executed."""
        queue = self.queue
        idle_since: Optional[float] = None
        if self._next_probe is not None:
            # Startup calibration, before the first claim: placement
            # should be right from job one, not from the first idle gap.
            self._maybe_probe(time.time())
        while True:
            if self.max_jobs is not None and self.jobs_done >= self.max_jobs:
                break
            queue.requeue_expired()
            limit = self.claim_batch
            if self.max_jobs is not None:
                limit = min(limit, self.max_jobs - self.jobs_done)
            claims = queue.claim_batch(self.worker_id, limit=limit)
            if not claims:
                now = time.time()
                if self.drain and queue.is_idle():
                    if idle_since is None:
                        idle_since = now
                    elif now - idle_since >= self.drain_grace:
                        break
                else:
                    idle_since = None
                self._maybe_gc(now)
                self._maybe_probe(now)
                faults.sleep(self.poll_interval)
                continue
            idle_since = None
            succeeded, failed = process_claimed_jobs(queue, claims, self.worker_id)
            self.jobs_done += succeeded
            self.jobs_failed += failed
            self._publish_stats()
        return self.jobs_done


# ----------------------------------------------------------------------
# Worker entry point: python -m repro.harness.queue
# ----------------------------------------------------------------------
def spawn_local_workers(
    cache_dir: str | os.PathLike,
    count: int,
    ttl: float = 60.0,
    poll_interval: float = 0.2,
    drain: bool = False,
    claim_batch: Optional[int] = None,
    gc_interval: Optional[float] = None,
    probe_interval: Optional[float] = None,
):
    """Start ``count`` worker subprocesses against ``cache_dir``.

    Convenience for single-host scale-out and the in-tree smoke tests;
    remote hosts just run the module entry point themselves.  The
    workers inherit the environment plus a ``PYTHONPATH`` that resolves
    this package, so they work from an uninstalled source tree.
    """
    import subprocess
    import sys

    import repro

    src_root = str(Path(next(iter(repro.__path__))).parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
    command = [
        sys.executable,
        "-m",
        "repro.harness.queue",
        str(cache_dir),
        "--ttl",
        str(ttl),
        "--poll",
        str(poll_interval),
    ]
    if drain:
        command.append("--drain")
    if claim_batch is not None:
        command.extend(["--claim-batch", str(claim_batch)])
    # None must mean what it means on QueueWorker — no janitor sweeps —
    # so pass an explicit 0 rather than inheriting the CLI's 900s
    # daemon default; these spawned workers are ephemeral batch hands,
    # not long-lived hosts.
    command.extend(["--gc-interval", str(gc_interval if gc_interval else 0)])
    # Same explicit-0 rationale as --gc-interval: spawned workers are
    # ephemeral batch hands and should not spend their first half-second
    # calibrating kernels unless the caller opts in.
    command.extend(["--probe-interval", str(probe_interval if probe_interval else 0)])
    return [subprocess.Popen(command, env=env) for _ in range(count)]


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Work-queue worker over a shared simulation cache directory"
    )
    parser.add_argument("cache_dir", help="shared cache directory (holds queue/)")
    parser.add_argument("--worker-id", default=None, help="identity stamped on leases")
    parser.add_argument(
        "--ttl", type=float, default=60.0, help="heartbeat TTL before re-lease (s)"
    )
    parser.add_argument(
        "--poll", type=float, default=0.2, help="idle polling interval (s)"
    )
    parser.add_argument(
        "--max-jobs", type=int, default=None, help="exit after N jobs (default: serve)"
    )
    parser.add_argument(
        "--drain",
        action="store_true",
        help="exit once the queue stays empty for the grace period",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=1.0,
        help="idle seconds before --drain exits",
    )
    parser.add_argument(
        "--claim-batch",
        type=int,
        default=1,
        help="jobs leased per pending-directory listing (single scan, up "
        "to N renames; the batch heartbeats while executing).  Raise on "
        "large grids where pending jobs vastly outnumber workers; a "
        "batch a small grid can't fill just serialises jobs idle peers "
        "could have run",
    )
    parser.add_argument(
        "--gc-interval",
        type=float,
        default=900.0,
        help="idle-time cache gc sweep period in seconds, jittered per "
        "worker so shared caches aren't swept in lockstep (0 disables)",
    )
    parser.add_argument(
        "--probe-interval",
        type=float,
        default=3600.0,
        help="per-kernel throughput probe refresh period in seconds, "
        "jittered per worker (0 disables).  The worker calibrates every "
        "registered replay engine at startup and each refresh, publishes "
        "cycles/second per kernel into queue/workers/, and executes "
        "unpinned jobs on the fastest kernel (REPRO_REPLAY_KERNEL, when "
        "set, always wins)",
    )
    parser.add_argument(
        "--status",
        action="store_true",
        help="print queue status as JSON and exit; the 'workers' section "
        "aggregates the claim-batch and gc counters every worker "
        "publishes into queue/workers/",
    )
    args = parser.parse_args(argv)

    # A driver running a chaos plan exports REPRO_FAULT_PLAN; spawned
    # workers self-install here so the whole fleet shares one schedule.
    faults.install_from_env()
    # Likewise REPRO_TELEMETRY: a driver tracing a run exports it, and
    # every worker publishes spans into the shared cache directory so
    # the request trace connects across processes and hosts.
    tracing.install_from_env(args.cache_dir)
    queue = WorkQueue(args.cache_dir, ttl=args.ttl)
    if args.status:
        print(json.dumps(queue.status(), indent=2))
        return 0
    worker = QueueWorker(
        queue,
        worker_id=args.worker_id,
        poll_interval=args.poll,
        max_jobs=args.max_jobs,
        drain=args.drain,
        drain_grace=args.drain_grace,
        claim_batch=args.claim_batch,
        gc_interval=args.gc_interval,
        probe_interval=args.probe_interval,
    )
    done = worker.run()
    print(
        f"worker {worker.worker_id}: {done} job(s) executed, "
        f"{worker.jobs_failed} failed, {queue.claimed} claim(s) over "
        f"{queue.claim_batches} listing(s), {worker.gc_sweeps} gc sweep(s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
