"""Regression tests for the warm-up clock, fetch-path and regfile-stats fixes.

Each test pins one of three timing/accounting bugs:

* resetting the measurement clock at the warm-up boundary used to leave
  in-flight completion events (and fetch/issue timestamps) in the old
  time base, stalling the machine for roughly the warm-up duration;
* an instruction fetched on a missed L1I line skipped branch prediction
  entirely, so such branches were never counted, never trained the
  predictor and never blocked the front end;
* integer register-file event counters included floating-point physical
  registers, and ``record_reads`` accumulated during warm-up while every
  other counter was gated.
"""

from __future__ import annotations

from repro.uarch import ProcessorConfig, simulate
from repro.uarch.config import CacheConfig
from repro.uarch.core import OutOfOrderCore
from repro.uarch.emulator import FunctionalEmulator
from repro.workloads import build_benchmark


class TestWarmupClockRebase:
    def test_measured_window_is_a_fraction_of_the_full_run(self):
        """The post-warm-up window must cost far fewer cycles than the run.

        Before the fix the machine waited for the new clock to catch up
        with stale completion events, so an 8000-instruction run measuring
        only its back half still reported nearly the full run's cycles.
        """
        program = build_benchmark("gzip")
        full = simulate(program, max_instructions=8_000, warmup_instructions=0)
        warm = simulate(program, max_instructions=8_000, warmup_instructions=4_000)
        assert warm.committed_instructions == 4_000
        assert warm.cycles < 0.8 * full.cycles

    def test_measured_cycles_are_additive_across_the_boundary(self):
        """front half + measured back half == whole run, give or take the
        pipeline drain at the front-half run's trace end.  With stale
        completion events the measured half alone exceeded the whole."""
        program = build_benchmark("gzip")
        prefix = simulate(program, max_instructions=4_000, warmup_instructions=0)
        full = simulate(program, max_instructions=8_000, warmup_instructions=0)
        warm = simulate(program, max_instructions=8_000, warmup_instructions=4_000)
        assert abs(prefix.cycles + warm.cycles - full.cycles) < 64

    def test_abella_keeps_deciding_after_the_rebase(self):
        """The adaptive policy's interval anchors must rebase with the
        clock; stale anchors froze its heuristic for the whole measured
        window (elapsed went negative until the new clock caught up)."""
        from repro.techniques import AbellaPolicy

        policy = AbellaPolicy(interval_cycles=768)
        stats = simulate(
            build_benchmark("gzip"),
            policy,
            max_instructions=8_000,
            warmup_instructions=4_000,
        )
        # A decision at a cycle below one interval length can only come
        # from an interval straddling the rebased boundary.
        assert any(cycle < policy.interval_cycles for cycle, _ in policy.decisions)
        assert stats.cycles > 2 * policy.interval_cycles

    def test_zero_cycle_warmup_boundary_is_safe(self):
        """warmup_instructions=0 still takes the no-rebase path."""
        program = build_benchmark("gzip")
        stats = simulate(program, max_instructions=1_000, warmup_instructions=0)
        assert stats.committed_instructions == 1_000


class TestBranchPredictionUnderIcacheMiss:
    def test_every_branch_is_predicted_despite_misses(self):
        """With a tiny L1I almost every fetch misses; branch counts must
        still match the trace exactly (one prediction per branch)."""
        program = build_benchmark("branchstorm")
        trace = list(FunctionalEmulator(program).run(max_instructions=3_000))
        expected_branches = sum(1 for dyn in trace if dyn.static.is_branch)
        assert expected_branches > 0

        config = ProcessorConfig.hpca2005()
        config.l1i = CacheConfig("l1i", 512, 1, 32, 1)
        core = OutOfOrderCore(iter(trace), config=config)
        stats = core.run()
        assert stats.l1i_misses > 100  # the scenario actually misses
        assert stats.branches == expected_branches

    def test_mispredicted_branch_on_missed_line_blocks_fetch(self):
        """A mispredict fetched on a missed line must stall the front end
        (before the fix it sailed through and fetch continued)."""
        program = build_benchmark("branchstorm")
        config = ProcessorConfig.hpca2005()
        config.l1i = CacheConfig("l1i", 512, 1, 32, 1)
        trace = FunctionalEmulator(program).run(max_instructions=3_000)
        core = OutOfOrderCore(trace, config=config)
        stats = core.run()
        assert stats.branch_mispredicts > 0


class TestIntegerRegfileEventCounts:
    def _run(self, warmup: int = 0) -> OutOfOrderCore:
        program = build_benchmark("fpstream")  # guarantees FP destinations
        trace = FunctionalEmulator(program).run(max_instructions=4_000)
        core = OutOfOrderCore(trace, warmup_instructions=warmup)
        core.run()
        return core

    def test_rf_writes_exclude_fp_tags(self):
        program = build_benchmark("fpstream")
        trace = list(FunctionalEmulator(program).run(max_instructions=4_000))
        int_dests = sum(
            1 for dyn in trace for reg in dyn.static.dests if not reg.is_fp
        )
        all_dests = sum(len(dyn.static.dests) for dyn in trace)
        assert int_dests < all_dests  # FP traffic is present

        core = OutOfOrderCore(iter(trace))
        stats = core.run()
        assert stats.rf_writes == int_dests
        assert stats.rf_writes == core.rename.int_file.writes

    def test_rf_reads_match_int_file_accounting(self):
        core = self._run()
        assert core.stats.rf_reads == core.rename.int_file.reads

    def test_record_reads_and_writes_respect_warmup_gating(self):
        warm = self._run(warmup=1_000)
        cold = self._run(warmup=0)
        # Gated: the physical-file counters see only the measured window.
        assert warm.rename.int_file.reads == warm.stats.rf_reads
        assert warm.rename.int_file.writes == warm.stats.rf_writes
        # And the measured window is strictly smaller than the full run.
        assert warm.stats.rf_reads < cold.stats.rf_reads
        assert warm.stats.rf_writes < cold.stats.rf_writes
