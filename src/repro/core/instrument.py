"""Hint emission: special NOOP insertion and instruction tagging.

Once the analysis has decided how many issue-queue entries each region
needs, the value must reach the processor.  The paper evaluates two
encodings (sections 3 and 5.3):

* ``"noop"`` -- a special NOOP carrying the value is inserted into the
  instruction stream.  It flows through fetch and decode (consuming
  bandwidth, which is the scheme's main cost) and is stripped before
  dispatch.
* ``"extension"`` / ``"improved"`` -- the value is carried in redundant bits
  of an ordinary instruction, so no bandwidth is lost.

Placement:

* DAG blocks receive their hint at the **start of the block** (the region
  "until the next special NOOP" is the block itself).
* Loops receive a single hint **before the loop is entered** -- at the end
  of each predecessor of the header that lies outside the loop -- so the
  pipelined-loop requirement governs every in-flight iteration instead of
  being re-issued each iteration.
* Library calls request the maximum queue size immediately before the call
  (section 4.4).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.core.config import CompilerConfig
from repro.core.dag_analysis import BlockRequirement
from repro.isa.encoding import make_hint_noop, tag_instruction
from repro.isa.program import BasicBlock, Program


#: Encoding modes accepted by :func:`instrument_program`.
NOOP_MODE = "noop"
TAG_MODES = ("extension", "improved")
ALL_MODES = (NOOP_MODE,) + TAG_MODES


@dataclass
class InstrumentationStats:
    """Bookkeeping about what the instrumenter emitted.

    Attributes:
        hints_inserted: number of special NOOPs inserted (NOOP mode).
        instructions_tagged: number of ordinary instructions tagged
            (Extension/Improved modes).
        library_call_hints: hints emitted for library-call sites.
        hints_skipped_redundant: hints elided because the fall-through
            predecessor already requested the same value.
        by_procedure: hints emitted per procedure.
    """

    hints_inserted: int = 0
    instructions_tagged: int = 0
    library_call_hints: int = 0
    hints_skipped_redundant: int = 0
    by_procedure: dict[str, int] = field(default_factory=dict)

    @property
    def total_hints(self) -> int:
        """All hints emitted, regardless of encoding."""
        return self.hints_inserted + self.instructions_tagged


def _previous_block_value(
    program: Program,
    procedure_name: str,
    block_index: int,
    block_hints: dict[tuple[str, str], int],
) -> int | None:
    """Hint value of the immediately preceding block when it falls through."""
    if block_index == 0:
        return None
    procedure = program.procedures[procedure_name]
    previous = procedure.blocks[block_index - 1]
    if previous.terminator is not None and not previous.falls_through:
        return None
    return block_hints.get((procedure_name, previous.label))


def _emit_at_block_start(
    block: BasicBlock, value: int, use_tags: bool, stats: InstrumentationStats
) -> bool:
    """Attach ``value`` to the start of ``block``; return True if emitted."""
    if use_tags:
        first = next((instr for instr in block.instructions if not instr.is_hint), None)
        if first is None:
            return False
        if first.iq_tag is None:
            tag_instruction(first, value)
            stats.instructions_tagged += 1
            return True
        return False
    block.instructions.insert(0, make_hint_noop(value))
    stats.hints_inserted += 1
    return True


def _emit_at_block_end(
    block: BasicBlock, value: int, use_tags: bool, stats: InstrumentationStats
) -> bool:
    """Attach ``value`` just before ``block``'s terminator (loop pre-headers)."""
    if use_tags:
        # Tag the terminator (or the last instruction) so the value takes
        # effect immediately before control enters the loop.
        target = block.instructions[-1] if block.instructions else None
        if target is None or target.is_hint:
            return False
        if target.iq_tag is None:
            tag_instruction(target, value)
            stats.instructions_tagged += 1
            return True
        # Already tagged (e.g. by its own block hint): prefer the larger
        # request so the loop is not starved.
        target.iq_tag = max(target.iq_tag, value)
        return True
    position = len(block.instructions)
    if block.terminator is not None:
        position -= 1
    block.instructions.insert(position, make_hint_noop(value))
    stats.hints_inserted += 1
    return True


def instrument_program(
    program: Program,
    requirements: dict[tuple[str, str], BlockRequirement],
    config: CompilerConfig,
    mode: str = NOOP_MODE,
    preheader_hints: dict[tuple[str, str], int] | None = None,
) -> tuple[Program, InstrumentationStats]:
    """Return an instrumented copy of ``program`` plus emission statistics.

    Args:
        program: the original program; never modified.
        requirements: mapping from (procedure, block label) to the block's
            requirement.  Entries with ``source == "loop"`` are *not* placed
            at the block itself; they are expressed through
            ``preheader_hints``.
        config: compiler configuration (used for the library-call maximum).
        mode: ``"noop"``, ``"extension"`` or ``"improved"``.
        preheader_hints: mapping from (procedure, block label) to a value to
            emit at the end of that block, i.e. immediately before entering
            a loop.
    """
    if mode not in ALL_MODES:
        raise ValueError(f"unknown instrumentation mode {mode!r}")

    instrumented = copy.deepcopy(program)
    stats = InstrumentationStats()
    use_tags = mode in TAG_MODES
    preheader_hints = dict(preheader_hints or {})

    block_start_hints: dict[tuple[str, str], int] = {
        key: req.entries
        for key, req in requirements.items()
        if req.source == "dag"
    }

    for procedure in instrumented.analysable_procedures():
        emitted = 0
        for block_index, block in enumerate(procedure.blocks):
            key = (procedure.name, block.label)

            start_value = block_start_hints.get(key)
            if start_value is not None:
                previous_value = _previous_block_value(
                    instrumented, procedure.name, block_index, block_start_hints
                )
                if previous_value == start_value:
                    stats.hints_skipped_redundant += 1
                elif _emit_at_block_start(block, start_value, use_tags, stats):
                    emitted += 1

            emitted += _instrument_library_calls(
                instrumented, block, config, use_tags, stats
            )

            end_value = preheader_hints.get(key)
            if end_value is not None:
                if _emit_at_block_end(block, end_value, use_tags, stats):
                    emitted += 1
        stats.by_procedure[procedure.name] = emitted

    return instrumented, stats


def _instrument_library_calls(
    program: Program,
    block: BasicBlock,
    config: CompilerConfig,
    use_tags: bool,
    stats: InstrumentationStats,
) -> int:
    """Emit a maximum-size request before every library call in ``block``."""
    emitted = 0
    index = 0
    while index < len(block.instructions):
        instr = block.instructions[index]
        is_library_call = (
            instr.is_call
            and instr.call_target in program.procedures
            and program.procedures[instr.call_target].is_library
        )
        if is_library_call:
            if use_tags:
                if instr.iq_tag is None:
                    tag_instruction(instr, config.max_iq_entries)
                    stats.instructions_tagged += 1
                    stats.library_call_hints += 1
                    emitted += 1
            else:
                block.instructions.insert(index, make_hint_noop(config.max_iq_entries))
                stats.hints_inserted += 1
                stats.library_call_hints += 1
                emitted += 1
                index += 1  # skip over the hint we just inserted
        index += 1
    return emitted
