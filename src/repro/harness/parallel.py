"""Parallel, persistently-cached experiment engine.

Every figure in the paper is a (benchmark × technique) grid of mutually
independent simulations, which makes the evaluation embarrassingly
parallel: this module fans the grid out over a process pool and backs it
with the content-addressed disk cache of :mod:`repro.harness.cache` so a
cell is never simulated twice — not within a run, and not across runs.

Usage::

    from repro.harness import ParallelSuiteRunner, RunConfig

    runner = ParallelSuiteRunner(
        RunConfig(max_instructions=20_000, warmup_instructions=6_000),
        workers=8,                     # default: REPRO_WORKERS or cpu_count
        cache_dir="results-cache",     # default: no on-disk cache
    )
    runner.run_suite()                 # simulate every cell, in parallel
    fig6 = figures.figure6(runner)     # figure assembly hits only caches

Semantics:

* **Determinism** — each simulation is a pure function of its inputs, so
  results are identical for any worker count; ``run_suite`` collects
  completed cells back into grid order, so iteration order is also stable.
* **Cache location** — ``cache_dir`` names a directory (created on
  demand) holding one JSON file per cell, named by the SHA-256 of the
  cell's full input set (benchmark traits, compiler/processor/energy
  configuration, technique, instruction budgets).  Pass the same
  directory across processes and sessions to share it; it is safe under
  concurrent writers.
* **Invalidation** — never explicit: changing any input changes the
  cell's hash, so stale entries are simply never read again.  Delete the
  directory to reclaim space.  ``CACHE_FORMAT_VERSION`` participates in
  the hash, so simulator semantic changes invalidate everything at once.
* **Workers** — ``workers=1`` runs every job in-process (no pool, no
  pickling), which tier-1 tests use to exercise this path
  deterministically; ``workers>1`` uses a ``ProcessPoolExecutor`` with
  picklable job specs.  The ``REPRO_WORKERS`` environment variable
  supplies the default.
* **Compilations** are not cached on disk: they are cheap relative to
  simulation, required in-process anyway for table 2 and the
  per-result ``compilation`` field, and already memoised per runner.
* **Decoded traces** are cached one level below the results: a
  ``traces/`` subdirectory of ``cache_dir`` (override with
  ``trace_cache_dir``) holds each benchmark's pre-decoded dynamic stream
  (:mod:`repro.uarch.trace`), keyed by program content + budget +
  emulator source and stored in independently loadable windows.  A
  result-cache miss that only changed the technique or the
  processor/energy configuration re-times the benchmark without
  re-emulating it, in-process and across pool workers.  Budgets above
  the trace window (``trace_window``; default ~16k instructions) replay
  window by window with decode memory bounded by the window size.
  Workers return their trace-cache hit/miss/store counter deltas with
  each job result and the runner folds them into its own
  ``trace_cache``, so traffic reports are exact for any worker count.
* **Bounding** — pass ``cache_max_entries`` to cap the result cache and
  ``trace_cache_max_bytes`` to cap the trace directory; stores prune
  least-recently-used entries (hits refresh recency via file mtimes, so
  the bounds hold across processes sharing the directory).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

from repro.core import compile_program
from repro.harness.cache import ResultCache, simulation_fingerprint, stats_from_dict, stats_to_dict
from repro.harness.experiment import (
    BenchmarkResult,
    RunConfig,
    SOFTWARE_TECHNIQUES,
    SuiteRunner,
    TECHNIQUES,
    make_policy,
)
from repro.power import build_power_report
from repro.uarch import SimulationStats, TraceCache, simulate
from repro.workloads import ALL_TRAITS, build_benchmark


@dataclass
class SimulationJob:
    """Picklable description of one (benchmark, technique) simulation.

    ``trace_cache_dir`` names the shared on-disk decoded-trace cache (see
    :mod:`repro.uarch.trace`), ``trace_cache_max_bytes`` its LRU byte
    cap, and ``trace_window`` the decoded-trace window size threaded into
    the replay core (None: library default).  All three are transport,
    not identity — replay statistics are bit-identical for every window
    size and cache setting — so none participates in
    :meth:`fingerprint`.
    """

    benchmark: str
    technique: str
    config: RunConfig
    trace_cache_dir: Optional[str] = None
    trace_window: Optional[int] = None
    trace_cache_max_bytes: Optional[int] = None

    def fingerprint(self) -> str:
        """Content hash of the job's full input set (see :mod:`.cache`)."""
        config = self.config
        return simulation_fingerprint(
            ALL_TRAITS[self.benchmark],
            self.technique,
            config.compiler_config,
            config.processor_config,
            config.energy_params,
            config.max_instructions,
            config.warmup_instructions,
            config.abella_interval,
        )


def run_simulation_job(job: SimulationJob, program=None, trace_cache=None) -> dict:
    """Execute one grid cell; return ``{"stats": ..., "trace_cache": ...}``.

    Runs inside pool workers, so it takes and returns only picklable
    values.  The in-process path passes ``program`` from the runner's
    compilation memo so software-technique cells are not compiled twice,
    and ``trace_cache`` (the runner's live
    :class:`~repro.uarch.trace.TraceCache`) so trace-cache traffic
    accumulates there directly; pool workers instead build a private
    ``TraceCache`` over ``job.trace_cache_dir`` and ship its counter
    deltas back under the ``"trace_cache"`` key, which the runner folds
    into its own cache — without this, every hit/miss/store observed in
    a worker process would be silently dropped and ``--cache-stats``
    would underreport traffic on parallel runs.
    """
    config = job.config
    policy = make_policy(job.technique, config)
    if program is None:
        if job.technique in SOFTWARE_TECHNIQUES:
            compilation = compile_program(
                build_benchmark(job.benchmark), config.compiler_config, mode=job.technique
            )
            program = compilation.instrumented_program
        else:
            program = build_benchmark(job.benchmark)
    local_cache = trace_cache
    if local_cache is None and job.trace_cache_dir is not None:
        local_cache = TraceCache(
            job.trace_cache_dir, max_bytes=job.trace_cache_max_bytes
        )
    stats = simulate(
        program,
        policy,
        config=config.processor_config,
        max_instructions=config.max_instructions,
        warmup_instructions=config.warmup_instructions,
        trace_cache=local_cache,
        trace_window=job.trace_window,
    )
    payload: dict = {"stats": stats_to_dict(stats)}
    if local_cache is not None and local_cache is not trace_cache:
        payload["trace_cache"] = {
            "hits": local_cache.hits,
            "misses": local_cache.misses,
            "stores": local_cache.stores,
            "evictions": local_cache.evictions,
        }
    return payload


class ParallelSuiteRunner(SuiteRunner):
    """Drop-in :class:`SuiteRunner` with fan-out and a persistent cache.

    Attributes:
        workers: process-pool size (1 means run jobs in-process).
        cache: the :class:`ResultCache`, or None when running uncached.
        simulations_run: cells actually simulated by this runner.
    """

    def __init__(
        self,
        config: Optional[RunConfig] = None,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        cache_max_entries: Optional[int] = None,
        trace_cache_dir: Optional[str] = None,
        trace_cache_max_bytes: Optional[int] = None,
        trace_window: Optional[int] = None,
    ):
        super().__init__(config)
        if workers is None:
            workers = int(os.environ.get("REPRO_WORKERS") or 0) or os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be a positive integer")
        self.workers = workers
        self.cache = (
            ResultCache(cache_dir, max_entries=cache_max_entries)
            if cache_dir is not None
            else None
        )
        # Decoded traces are shared one level below the result cache: a
        # result-cache miss (new technique, changed processor/energy
        # config) still reuses the benchmark's emulation if the trace
        # cache holds it.  Defaults to a ``traces/`` subdirectory of the
        # result cache so both travel together.
        if trace_cache_dir is None and cache_dir is not None:
            trace_cache_dir = str(Path(cache_dir) / "traces")
        self.trace_cache_dir = trace_cache_dir
        self.trace_cache_max_bytes = trace_cache_max_bytes
        self.trace_cache = (
            TraceCache(trace_cache_dir, max_bytes=trace_cache_max_bytes)
            if trace_cache_dir is not None
            else None
        )
        self.trace_window = trace_window
        self.simulations_run = 0

    # ------------------------------------------------------------------
    def _job(self, benchmark: str, technique: str) -> SimulationJob:
        return SimulationJob(
            benchmark,
            technique,
            self.config,
            trace_cache_dir=self.trace_cache_dir,
            trace_window=self.trace_window,
            trace_cache_max_bytes=self.trace_cache_max_bytes,
        )

    def _fold_trace_counters(self, payload: dict) -> None:
        """Fold a worker's trace-cache counter deltas into the runner's.

        The in-process path simulates against ``self.trace_cache``
        directly (no ``"trace_cache"`` key in the payload), so nothing is
        ever double counted.
        """
        deltas = payload.get("trace_cache")
        if deltas is None or self.trace_cache is None:
            return
        cache = self.trace_cache
        cache.hits += deltas["hits"]
        cache.misses += deltas["misses"]
        cache.stores += deltas["stores"]
        cache.evictions += deltas["evictions"]

    def result(self, benchmark: str, technique: str) -> BenchmarkResult:
        """One cell, consulting memory first, then disk, then simulating."""
        key = (benchmark, technique)
        if key in self._results:
            return self._results[key]
        job = self._job(benchmark, technique)
        stats = self._cached_stats(job)
        if stats is None:
            payload = run_simulation_job(job, self._program_for(job), self.trace_cache)
            self._fold_trace_counters(payload)
            stats = stats_from_dict(payload["stats"])
            self.simulations_run += 1
            self._store(job, stats)
        result = self._build_result(job, stats)
        self._results[key] = result
        return result

    def run_suite(
        self,
        techniques: Iterable[str] = TECHNIQUES,
        benchmarks: Optional[Iterable[str]] = None,
    ) -> dict[tuple[str, str], BenchmarkResult]:
        """Populate the whole grid, fanning uncached cells over the pool.

        Returns the results in deterministic grid order (benchmarks outer,
        techniques inner) regardless of worker completion order.
        """
        techniques = tuple(techniques)  # survive one-shot iterators
        if benchmarks is None:
            benchmarks = self.config.benchmarks
        grid = [
            (benchmark, technique)
            for benchmark in benchmarks
            for technique in techniques
        ]
        pending: list[SimulationJob] = []
        stats_by_key: dict[tuple[str, str], SimulationStats] = {}
        for benchmark, technique in grid:
            if (benchmark, technique) in self._results:
                continue
            job = self._job(benchmark, technique)
            cached = self._cached_stats(job)
            if cached is not None:
                stats_by_key[(benchmark, technique)] = cached
            else:
                pending.append(job)

        if pending:
            if self.workers == 1:
                payloads = [
                    run_simulation_job(job, self._program_for(job), self.trace_cache)
                    for job in pending
                ]
            else:
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    payloads = list(pool.map(run_simulation_job, pending))
            self.simulations_run += len(pending)
            for job, payload in zip(pending, payloads):
                self._fold_trace_counters(payload)
                stats = stats_from_dict(payload["stats"])
                self._store(job, stats)
                stats_by_key[(job.benchmark, job.technique)] = stats

        for benchmark, technique in grid:
            key = (benchmark, technique)
            if key not in self._results:
                job = self._job(benchmark, technique)
                self._results[key] = self._build_result(job, stats_by_key[key])
        return {key: self._results[key] for key in grid}

    # ------------------------------------------------------------------
    def _program_for(self, job: SimulationJob):
        """The job's program, via the runner's compilation memo in-process."""
        if job.technique in SOFTWARE_TECHNIQUES:
            return self.compilation(job.benchmark, job.technique).instrumented_program
        return build_benchmark(job.benchmark)

    def _cached_stats(self, job: SimulationJob) -> Optional[SimulationStats]:
        if self.cache is None:
            return None
        return self.cache.load(job.fingerprint())

    def _store(self, job: SimulationJob, stats: SimulationStats) -> None:
        if self.cache is not None:
            self.cache.store(
                job.fingerprint(), stats, benchmark=job.benchmark, technique=job.technique
            )

    def _build_result(self, job: SimulationJob, stats: SimulationStats) -> BenchmarkResult:
        """Assemble the full result record from (possibly cached) counters.

        Power reports are pure functions of the counters, so they are
        recomputed on every load rather than persisted.
        """
        policy = make_policy(job.technique, self.config)
        compilation = None
        if job.technique in SOFTWARE_TECHNIQUES:
            compilation = self.compilation(job.benchmark, job.technique)
        power = build_power_report(stats, policy, self.config.energy_params)
        return BenchmarkResult(
            benchmark=job.benchmark,
            technique=job.technique,
            stats=stats,
            power=power,
            policy_name=policy.name,
            compilation=compilation,
        )
