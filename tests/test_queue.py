"""Work-queue protocol, crash recovery and backend-equivalence tests.

The contract (see :mod:`repro.harness.queue`): jobs are leased at most
once at a time via atomic renames, a lease whose heartbeat lapses is
re-leased exactly once, duplicate completions are idempotent
(last-writer-wins on identical payloads), and a grid run through
``backend="queue"`` with real worker subprocesses over a shared cache
directory is bit-identical to the local backend.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

import pytest

from repro.harness import ParallelSuiteRunner, RunConfig, SimulationJob
from repro.harness.queue import (
    DEFAULT_MAX_ATTEMPTS,
    QueueWorker,
    WorkQueue,
    process_claimed_job,
    spawn_local_workers,
)

TINY_CONFIG = RunConfig(
    benchmarks=("gzip", "mcf"),
    max_instructions=2_500,
    warmup_instructions=500,
)
TINY_TECHNIQUES = ("baseline", "noop")


def _job(benchmark="gzip", technique="baseline", config=TINY_CONFIG, **kwargs):
    return SimulationJob(benchmark, technique, config, **kwargs)


class TestProtocol:
    def test_enqueue_claim_complete_roundtrip(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        job = _job()
        fingerprint = queue.enqueue(job)
        assert queue.pending_path(fingerprint).exists()
        assert queue.status()["pending"] == 1

        claimed = queue.claim("w1")
        assert claimed is not None and claimed.fingerprint == fingerprint
        assert not queue.pending_path(fingerprint).exists()
        lease = json.loads(queue.lease_path(fingerprint).read_text())
        assert lease["worker"] == "w1"
        assert claimed.job.benchmark == job.benchmark

        queue.complete(claimed, {"stats": {"cycles": 1}}, "w1")
        assert not queue.lease_path(fingerprint).exists()
        marker = queue.done_marker(fingerprint)
        assert marker["payload"] == {"stats": {"cycles": 1}}
        assert queue.is_idle()

    def test_enqueue_is_idempotent(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        fingerprint = queue.enqueue(_job())
        queue.enqueue(_job())
        assert queue.status()["pending"] == 1
        claimed = queue.claim("w1")
        queue.enqueue(_job())  # leased: still not duplicated
        assert queue.status()["pending"] == 0
        queue.complete(claimed, {"stats": {}}, "w1")
        queue.enqueue(_job())  # done: not resurrected
        assert queue.status()["pending"] == 0
        assert queue.done_marker(fingerprint) is not None

    def test_claim_from_empty_queue(self, tmp_path):
        assert WorkQueue(tmp_path, ttl=30).claim("w1") is None

    def test_malformed_envelope_is_poisoned(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        (queue.pending_dir / ("a" * 64 + ".json")).write_text("{not json")
        assert queue.claim("w1") is None
        assert queue.status()["poisoned"] == 1
        assert queue.status()["pending"] == 0

    def test_fresh_lease_is_not_requeued(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        queue.enqueue(_job())
        queue.claim("w1")
        assert queue.requeue_expired() == []

    def test_claim_restarts_the_heartbeat_clock(self, tmp_path):
        """A job that sat pending longer than the TTL must not be
        sweepable the instant it is claimed: the winning rename would
        otherwise inherit the stale enqueue-time mtime."""
        queue = WorkQueue(tmp_path, ttl=5)
        fingerprint = queue.enqueue(_job())
        stale = time.time() - 60
        os.utime(queue.pending_path(fingerprint), (stale, stale))
        claimed = queue.claim("w1")
        assert claimed is not None
        assert time.time() - claimed.lease_path.stat().st_mtime < queue.ttl
        assert queue.requeue_expired() == []

    def test_error_marker_is_retryable_on_enqueue(self, tmp_path):
        """One transient worker failure must not poison the fingerprint:
        re-enqueueing consumes the error marker and queues the job."""
        queue = WorkQueue(tmp_path, ttl=30)
        fingerprint = queue.enqueue(_job())
        claimed = queue.claim("w1")
        queue.complete(claimed, None, "w1", error="transient: disk full")
        assert "error" in queue.done_marker(fingerprint)

        assert queue.enqueue(_job()) == fingerprint
        assert queue.pending_path(fingerprint).exists()
        assert queue.done_marker(fingerprint) is None
        # This time it succeeds; the success marker then blocks re-runs.
        retry = queue.claim("w2")
        queue.complete(retry, {"stats": {"cycles": 1}}, "w2")
        queue.enqueue(_job())
        assert queue.status()["pending"] == 0


class TestCrashRecovery:
    def test_expired_lease_is_requeued_and_completes(self, tmp_path):
        """A lease whose heartbeat lapsed goes back to pending exactly
        once, a second worker completes it, and a duplicate completion
        from the presumed-dead first worker is a harmless overwrite."""
        queue = WorkQueue(tmp_path, ttl=5)
        fingerprint = queue.enqueue(_job())
        first = queue.claim("crashy")
        assert first is not None

        # The worker dies: no more heartbeats.  Backdate the lease past
        # the TTL instead of sleeping through it.
        stale = time.time() - 60
        os.utime(first.lease_path, (stale, stale))
        assert queue.requeue_expired() == [fingerprint]
        assert queue.pending_path(fingerprint).exists()
        # Exactly once: a second sweep finds nothing.
        assert queue.requeue_expired() == []

        second = queue.claim("healthy")
        assert second is not None and second.fingerprint == fingerprint
        payload = {"stats": {"cycles": 42}}
        queue.complete(second, payload, "healthy")
        # The slow-not-dead first worker finishes too: identical
        # fingerprint, identical payload, last writer wins cleanly.
        queue.complete(first, payload, "crashy")
        marker = queue.done_marker(fingerprint)
        assert marker["payload"] == payload
        assert marker["worker"] == "crashy"
        assert not queue.lease_path(fingerprint).exists()

    def test_expired_lease_with_marker_is_dropped(self, tmp_path):
        """A dead lease whose job already completed must not re-run."""
        queue = WorkQueue(tmp_path, ttl=5)
        fingerprint = queue.enqueue(_job())
        claimed = queue.claim("w1")
        queue.complete(claimed, {"stats": {}}, "w1")
        # Simulate the lease lingering (e.g. the unlink lost a race).
        queue.leases_dir.mkdir(parents=True, exist_ok=True)
        lease = queue.lease_path(fingerprint)
        lease.write_text(json.dumps(claimed.envelope))
        stale = time.time() - 60
        os.utime(lease, (stale, stale))
        assert queue.requeue_expired() == []
        assert not lease.exists()
        assert not queue.pending_path(fingerprint).exists()

    def test_killed_worker_subprocess_is_recovered(self, tmp_path):
        """Kill a real worker mid-lease; the job is re-leased after the
        heartbeat TTL and completes elsewhere."""
        queue = WorkQueue(tmp_path, ttl=2)
        # A budget big enough that the worker is still simulating when
        # the signal lands (claiming happens within the first second).
        slow = RunConfig(
            benchmarks=("gzip",),
            max_instructions=250_000,
            warmup_instructions=1_000,
        )
        fingerprint = queue.enqueue(_job(config=slow))
        [proc] = spawn_local_workers(tmp_path, 1, ttl=2, poll_interval=0.05)
        try:
            deadline = time.time() + 60
            while not queue.lease_path(fingerprint).exists():
                assert time.time() < deadline, "worker never claimed the job"
                assert proc.poll() is None, "worker exited prematurely"
                time.sleep(0.05)
        finally:
            proc.kill()
            proc.wait(timeout=10)
        assert not queue.done_path(fingerprint).exists()

        # Heartbeats stopped with the worker; expire and sweep.
        stale = time.time() - 60
        os.utime(queue.lease_path(fingerprint), (stale, stale))
        assert queue.requeue_expired() == [fingerprint]
        assert queue.pending_path(fingerprint).exists()

        # Protocol-level completion (running the 250k-instruction job
        # in-process would dominate the suite's runtime; worker-executed
        # completions are covered by the backend smoke test below).
        rescued = queue.claim("rescuer")
        assert rescued is not None
        queue.complete(rescued, {"stats": {"cycles": 7}}, "rescuer")
        assert queue.done_marker(fingerprint)["payload"] == {"stats": {"cycles": 7}}

    def test_failing_job_retries_then_poisons_with_reason(self, tmp_path):
        """A job that *raises* (vs. a worker that dies) must not wedge
        the queue: it re-enqueues with its attempts counter bumped until
        the budget is spent, then escalates to poison/ with the final
        traceback, worker id and timestamp recorded."""
        queue = WorkQueue(tmp_path, ttl=5)
        bad_fp = queue.enqueue(_job(technique="no-such-technique"))

        # Attempts 1..max-1 push the job back to pending with the
        # counter incremented; nothing is poisoned yet.
        for attempt in range(1, DEFAULT_MAX_ATTEMPTS):
            claimed = queue.claim("w1")
            assert claimed is not None
            assert claimed.envelope["attempts"] == attempt - 1
            assert process_claimed_job(queue, claimed, "w1") is False
            assert queue.pending_path(bad_fp).exists()
            assert not queue.poison_path(bad_fp).exists()
        assert queue.retried == DEFAULT_MAX_ATTEMPTS - 1

        # The final attempt exhausts the budget and escalates.
        claimed = queue.claim("w1")
        assert process_claimed_job(queue, claimed, "w1") is False
        assert queue.poison_path(bad_fp).exists()
        assert not queue.pending_path(bad_fp).exists()
        assert queue.done_marker(bad_fp) is None
        assert queue.is_idle()
        assert queue.poisoned == 1

        # The record explains why, who and when.
        record = queue.poison_record(bad_fp)
        assert "no-such-technique" in record["poison_reason"]
        assert record["worker"] == "w1"
        assert record["attempts"] == DEFAULT_MAX_ATTEMPTS
        assert record["poisoned_at"] > 0
        status = queue.status()
        assert status["poisoned"] == 1
        [entry] = status["poison"]
        assert entry["fingerprint"] == bad_fp
        assert "no-such-technique" in entry["reason"]
        assert entry["worker"] == "w1"

        # The driver's wait loop surfaces the recorded reason.
        runner = ParallelSuiteRunner(
            TINY_CONFIG, workers=1, cache_dir=str(tmp_path), backend="queue"
        )
        with pytest.raises(RuntimeError, match="no-such-technique"):
            runner._await_markers(queue, [bad_fp])

        # Re-enqueueing consumes the poison record and starts afresh.
        again = queue.enqueue(_job(technique="no-such-technique"))
        assert again == bad_fp
        assert queue.pending_path(bad_fp).exists()
        assert not queue.poison_path(bad_fp).exists()


class TestQueueBackendSmoke:
    """Tier-1 smoke: a tiny grid through ``backend="queue"`` with two
    in-tree worker subprocesses is bit-identical to ``backend="local"``,
    with exact folded trace-cache counters."""

    def test_two_worker_grid_matches_local_backend(self, tmp_path):
        local = ParallelSuiteRunner(TINY_CONFIG, workers=1)
        local.run_suite(techniques=TINY_TECHNIQUES)

        queue_runner = ParallelSuiteRunner(
            TINY_CONFIG,
            workers=1,
            cache_dir=str(tmp_path),
            backend="queue",
            queue_workers=2,
            queue_assist=False,  # the workers must do all the work
            queue_poll=0.1,
            queue_ttl=30,
            queue_timeout=300,
        )
        queue_runner.run_suite(techniques=TINY_TECHNIQUES)
        assert queue_runner.simulations_run == len(TINY_CONFIG.benchmarks) * len(
            TINY_TECHNIQUES
        )
        for benchmark in TINY_CONFIG.benchmarks:
            for technique in TINY_TECHNIQUES:
                assert dataclasses.asdict(
                    queue_runner.result(benchmark, technique).stats
                ) == dataclasses.asdict(local.result(benchmark, technique).stats), (
                    benchmark,
                    technique,
                )
        # Worker trace-cache traffic was folded back through the
        # completion markers: each worker process missed and stored each
        # benchmark it met first, none of which happened in this process.
        cache = queue_runner.trace_cache
        assert cache.misses >= len(TINY_CONFIG.benchmarks)
        assert cache.stores >= len(TINY_CONFIG.benchmarks)
        # The queue drained completely.
        queue = WorkQueue(tmp_path, ttl=30)
        assert queue.is_idle()

    def test_warm_cache_skips_the_queue_entirely(self, tmp_path):
        runner = ParallelSuiteRunner(
            TINY_CONFIG,
            workers=1,
            cache_dir=str(tmp_path),
            backend="queue",
            queue_ttl=30,
        )
        runner.run_suite(techniques=TINY_TECHNIQUES)
        warm = ParallelSuiteRunner(
            TINY_CONFIG,
            workers=1,
            cache_dir=str(tmp_path),
            backend="queue",
            queue_ttl=30,
        )
        warm.run_suite(techniques=TINY_TECHNIQUES)
        assert warm.simulations_run == 0
        assert warm.cache.hits == len(TINY_CONFIG.benchmarks) * len(TINY_TECHNIQUES)

    def test_stalled_queue_times_out(self, tmp_path):
        """No workers, no assist, nothing heartbeating: the driver's
        inactivity timeout must fire instead of waiting forever."""
        runner = ParallelSuiteRunner(
            TINY_CONFIG,
            workers=1,
            cache_dir=str(tmp_path),
            backend="queue",
            queue_assist=False,
            queue_poll=0.05,
            queue_timeout=0.5,
        )
        with pytest.raises(TimeoutError):
            runner.run_suite(techniques=("baseline",), benchmarks=("gzip",))

    def test_queue_backend_requires_cache_dir(self):
        with pytest.raises(ValueError):
            ParallelSuiteRunner(TINY_CONFIG, backend="queue")

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError):
            ParallelSuiteRunner(TINY_CONFIG, backend="carrier-pigeon")


class TestWorkerLoop:
    def test_drain_worker_serves_and_exits(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        for technique in TINY_TECHNIQUES:
            queue.enqueue(_job(technique=technique))
        worker = QueueWorker(
            queue, worker_id="w1", poll_interval=0.05, drain=True, drain_grace=0.1
        )
        executed = worker.run()
        assert executed == len(TINY_TECHNIQUES)
        assert queue.is_idle()
        for technique in TINY_TECHNIQUES:
            marker = queue.done_marker(_job(technique=technique).fingerprint())
            assert marker is not None and marker["payload"]["stats"]["cycles"] > 0
        # Results were published through the shared ResultCache too.
        from repro.harness.cache import ResultCache

        cache = ResultCache(tmp_path)
        for technique in TINY_TECHNIQUES:
            assert cache.load(_job(technique=technique).fingerprint()) is not None

    def test_max_jobs_bounds_the_loop(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        for technique in TINY_TECHNIQUES:
            queue.enqueue(_job(technique=technique))
        worker = QueueWorker(queue, poll_interval=0.05, max_jobs=1)
        assert worker.run() == 1
        assert queue.status()["pending"] == 1


class TestBatchedClaims:
    """One pending-directory listing backs up to k atomic renames."""

    def _enqueue_grid(self, queue, count=5):
        jobs = [
            _job(config=dataclasses.replace(TINY_CONFIG, max_instructions=1_000 + index))
            for index in range(count)
        ]
        return [queue.enqueue(job) for job in jobs]

    def test_claim_batch_leases_up_to_the_limit(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        self._enqueue_grid(queue, count=5)
        claims = queue.claim_batch("w1", limit=3)
        assert len(claims) == 3
        assert queue.status()["pending"] == 2
        assert queue.status()["leased"] == 3
        for claimed in claims:
            assert claimed.lease_path.exists()
        # The remainder drains with one more listing; over-asking is fine.
        rest = queue.claim_batch("w1", limit=10)
        assert len(rest) == 2
        assert queue.claim_batch("w1", limit=10) == []

    def test_status_reports_claim_batch_stats(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        self._enqueue_grid(queue, count=4)
        queue.claim_batch("w1", limit=4)
        claims = queue.status()["claims_this_process"]
        assert claims["claimed"] == 4
        assert claims["claim_batches"] == 1
        assert claims["mean_batch_size"] == 4.0

    def test_single_claim_is_a_batch_of_one(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        self._enqueue_grid(queue, count=2)
        assert queue.claim("w1") is not None
        claims = queue.status()["claims_this_process"]
        assert claims == {
            "claimed": 1,
            "claim_batches": 1,
            "mean_batch_size": 1.0,
        }

    def test_claim_batch_rejects_a_nonpositive_limit(self, tmp_path):
        with pytest.raises(ValueError):
            WorkQueue(tmp_path, ttl=30).claim_batch("w1", limit=0)

    def test_batch_heartbeats_every_held_lease(self, tmp_path, monkeypatch):
        """While job 1 of a batch runs past the TTL, the leases of the
        jobs queued behind it must keep heartbeating — otherwise a
        sweeper re-leases them and the batch's round-trip saving turns
        into duplicated work."""
        import threading

        from repro.harness import queue as queue_module

        ttl = 0.6
        queue = WorkQueue(tmp_path, ttl=ttl)
        self._enqueue_grid(queue, count=2)
        claims = queue.claim_batch("w1", limit=2)
        assert len(claims) == 2

        def _slow_job(claimed):
            time.sleep(ttl * 1.5)  # longer than the TTL; beats are TTL/4
            return {"stats": {"cycles": 1}}

        monkeypatch.setattr(queue_module, "execute_queue_job", _slow_job)
        worker = threading.Thread(
            target=queue_module.process_claimed_jobs,
            args=(queue, claims, "w1"),
        )
        worker.start()
        try:
            swept = []
            while worker.is_alive():
                swept.extend(queue.requeue_expired())
                time.sleep(0.05)
        finally:
            worker.join()
        assert swept == []  # heartbeats kept every held lease fresh
        for claimed in claims:
            marker = queue.done_marker(claimed.fingerprint)
            assert marker is not None and "error" not in marker


class TestIdleGcSweeps:
    """Idle workers double as cache janitors on a jittered period."""

    def _plant_garbage(self, queue) -> tuple:
        """An orphaned temp file and an expired completion marker."""
        from repro.atomicio import TMP_PREFIX
        from repro.harness.cache import (
            DEFAULT_DONE_MARKER_MAX_AGE_SECONDS,
            DEFAULT_TMP_MAX_AGE_SECONDS,
        )

        orphan = queue.cache_dir / (TMP_PREFIX + "dead-writer")
        orphan.write_text("{}")
        stale = time.time() - DEFAULT_TMP_MAX_AGE_SECONDS - 60
        os.utime(orphan, (stale, stale))
        marker = queue.done_dir / ("b" * 64 + ".json")
        marker.write_text("{}")
        expired = time.time() - DEFAULT_DONE_MARKER_MAX_AGE_SECONDS - 60
        os.utime(marker, (expired, expired))
        return orphan, marker

    def test_idle_worker_sweeps_on_the_jittered_interval(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        orphan, marker = self._plant_garbage(queue)
        worker = QueueWorker(
            queue,
            worker_id="janitor",
            poll_interval=0.01,
            drain=True,
            drain_grace=0.3,
            gc_interval=0.02,
        )
        assert worker.run() == 0  # empty queue: pure idle
        assert worker.gc_sweeps >= 1
        assert not orphan.exists()
        assert not marker.exists()

    def test_gc_disabled_leaves_garbage_alone(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        orphan, marker = self._plant_garbage(queue)
        worker = QueueWorker(
            queue,
            worker_id="lazy",
            poll_interval=0.01,
            drain=True,
            drain_grace=0.05,
            gc_interval=None,
        )
        worker.run()
        assert worker.gc_sweeps == 0
        assert orphan.exists() and marker.exists()

    def test_gc_never_touches_live_protocol_files(self, tmp_path):
        """A pending job must survive a sweep even when its file is old
        — it is live protocol state, not garbage."""
        queue = WorkQueue(tmp_path, ttl=30)
        fingerprint = queue.enqueue(_job())
        stale = time.time() - 14 * 24 * 3600
        os.utime(queue.pending_path(fingerprint), (stale, stale))
        worker = QueueWorker(
            queue,
            worker_id="janitor",
            poll_interval=0.01,
            max_jobs=0,
            gc_interval=0.0001,
        )
        worker._maybe_gc(time.time() + 1)
        assert worker.gc_sweeps == 1
        assert queue.pending_path(fingerprint).exists()


class TestWorkerStatsPublication:
    """Claim-batch stats must be observable from *other* processes."""

    def test_worker_publishes_counters_into_the_queue_directory(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        for index in range(2):
            queue.enqueue(
                _job(
                    config=dataclasses.replace(
                        TINY_CONFIG, max_instructions=1_000 + index
                    )
                )
            )
        worker = QueueWorker(
            queue,
            worker_id="stats-w1",
            poll_interval=0.01,
            drain=True,
            drain_grace=0.05,
            claim_batch=2,
        )
        assert worker.run() == 2
        stats_file = queue.workers_dir / "stats-w1.json"
        assert stats_file.exists()
        payload = json.loads(stats_file.read_text())
        assert payload["claimed"] == 2
        assert payload["claim_batches"] == 1
        assert payload["jobs_done"] == 2

        # A *fresh* WorkQueue (the --status CLI, another host) sees the
        # fleet totals even though its own in-process counters are zero.
        observer = WorkQueue(tmp_path, ttl=30)
        status = observer.status()
        assert status["claims_this_process"]["claimed"] == 0
        assert status["workers"]["workers"] == 1
        assert status["workers"]["claimed"] == 2
        assert status["workers"]["claim_batches"] == 1
        assert status["workers"]["mean_batch_size"] == 2.0

    def test_malformed_worker_stats_are_skipped(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        (queue.workers_dir / "broken.json").write_text("{not json")
        (queue.workers_dir / "foreign.json").write_text('{"format": 99}')
        assert queue.worker_stats()["workers"] == 0

    def test_stale_worker_stats_expire_via_gc(self, tmp_path):
        from repro.harness.cache import (
            DEFAULT_DONE_MARKER_MAX_AGE_SECONDS,
            gc_cache_tree,
        )

        queue = WorkQueue(tmp_path, ttl=30)
        dead = queue.workers_dir / "dead-host.json"
        dead.write_text('{"format": 1, "claimed": 5, "claim_batches": 2}')
        expired = time.time() - DEFAULT_DONE_MARKER_MAX_AGE_SECONDS - 60
        os.utime(dead, (expired, expired))
        live = queue.workers_dir / "live-host.json"
        live.write_text('{"format": 1, "claimed": 1, "claim_batches": 1}')
        gc_cache_tree(tmp_path)
        assert not dead.exists()
        assert live.exists()

    def test_worker_id_is_sanitised_into_a_safe_filename(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        worker = QueueWorker(queue, worker_id="../rack1/host 7", poll_interval=0.01)
        worker._publish_stats()
        [stats_file] = [
            p for p in queue.workers_dir.iterdir() if not p.name.startswith(".")
        ]
        assert stats_file.parent == queue.workers_dir
        # Path bytes rewritten, plus a digest so distinct raw ids that
        # sanitise alike cannot clobber one another's stats file.
        assert stats_file.name.startswith("-rack1-host-7-")
        assert stats_file.name.endswith(".json")
        # The payload still records the operator's original id verbatim.
        assert json.loads(stats_file.read_text())["worker"] == "../rack1/host 7"

    def test_distinct_ids_with_identical_sanitisations_do_not_collide(
        self, tmp_path
    ):
        queue = WorkQueue(tmp_path, ttl=30)
        QueueWorker(queue, worker_id="rack1/host7")._publish_stats()
        QueueWorker(queue, worker_id="rack1 host7")._publish_stats()
        files = [
            p for p in queue.workers_dir.iterdir() if not p.name.startswith(".")
        ]
        assert len(files) == 2
        assert queue.worker_stats()["workers"] == 2


class TestPriorityScheduling:
    """The ``priority`` envelope band and priority-ordered claiming."""

    CELLS = [
        ("gzip", "baseline"),
        ("gzip", "noop"),
        ("mcf", "baseline"),
        ("mcf", "noop"),
    ]

    def test_envelope_carries_the_clamped_band(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        fingerprint = queue.enqueue(_job(priority=7))
        envelope = json.loads(queue.pending_path(fingerprint).read_text())
        assert envelope["priority"] == 7
        # Out-of-band values clamp instead of corrupting the schedule.
        low = queue.enqueue(_job(technique="noop", priority=-3))
        high = queue.enqueue(_job(benchmark="mcf", priority=99))
        assert json.loads(queue.pending_path(low).read_text())["priority"] == 0
        assert json.loads(queue.pending_path(high).read_text())["priority"] == 9

    def test_default_band_is_zero(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        fingerprint = queue.enqueue(_job())
        assert (
            json.loads(queue.pending_path(fingerprint).read_text())["priority"]
            == 0
        )

    def test_claims_come_out_in_band_order(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        bands = [0, 9, 3, 5]
        expected: dict[str, int] = {}
        for (benchmark, technique), band in zip(self.CELLS, bands):
            fingerprint = queue.enqueue(
                _job(benchmark=benchmark, technique=technique), priority=band
            )
            expected[fingerprint] = band
        claimed_bands = []
        while True:
            claimed = queue.claim("w1")
            if claimed is None:
                break
            claimed_bands.append(expected[claimed.fingerprint])
        assert claimed_bands == [9, 5, 3, 0]

    def test_band_order_holds_for_a_fresh_queue_object(self, tmp_path):
        """A worker process that did not enqueue (empty priority memo)
        must read the bands from the pending envelopes themselves."""
        producer = WorkQueue(tmp_path, ttl=30)
        bands = [2, 8, 0, 6]
        expected = {}
        for (benchmark, technique), band in zip(self.CELLS, bands):
            fingerprint = producer.enqueue(
                _job(benchmark=benchmark, technique=technique), priority=band
            )
            expected[fingerprint] = band
        consumer = WorkQueue(tmp_path, ttl=30)
        order = [
            expected[claim.fingerprint]
            for claim in consumer.claim_batch("w2", limit=4)
        ]
        assert order == [8, 6, 2, 0]

    def test_priority_is_fixed_at_first_enqueue(self, tmp_path):
        """A deduped re-submission at another band must not rewrite the
        pending envelope: the republish could race the claim rename and
        resurrect a just-leased job into double execution."""
        queue = WorkQueue(tmp_path, ttl=30)
        fingerprint = queue.enqueue(_job(), priority=2)
        queue.enqueue(_job(), priority=9)
        envelope = json.loads(queue.pending_path(fingerprint).read_text())
        assert envelope["priority"] == 2

    def test_status_reports_pending_by_priority_band(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        for (benchmark, technique), band in zip(self.CELLS, [9, 9, 4, 0]):
            queue.enqueue(
                _job(benchmark=benchmark, technique=technique), priority=band
            )
        status = queue.status()
        assert status["pending_by_priority"] == {"9": 2, "4": 1, "0": 1}
        # Bands drain in order and the breakdown follows.
        queue.claim("w1")
        assert queue.status()["pending_by_priority"] == {"9": 1, "4": 1, "0": 1}

    def test_retry_preserves_the_band(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        fingerprint = queue.enqueue(_job(max_attempts=3), priority=6)
        claimed = queue.claim("w1")
        assert queue.fail(claimed, "boom", "w1")  # retried, not poisoned
        envelope = json.loads(queue.pending_path(fingerprint).read_text())
        assert envelope["priority"] == 6
        assert envelope["attempts"] == 1


class TestHostStats:
    """Per-host aggregation of the fleet's published worker counters."""

    def test_publication_carries_the_host_tag(self, tmp_path):
        import socket as socket_module

        queue = WorkQueue(tmp_path, ttl=30)
        QueueWorker(queue, worker_id="w1", poll_interval=0.01)._publish_stats()
        [stats_file] = [
            p for p in queue.workers_dir.iterdir() if not p.name.startswith(".")
        ]
        payload = json.loads(stats_file.read_text())
        assert payload["host"] == socket_module.gethostname()

    def test_worker_stats_aggregates_per_host(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        for host, claimed, done in (
            ("alpha", 3, 2),
            ("alpha", 1, 1),
            ("beta", 5, 5),
        ):
            name = f"{host}-{claimed}.json"
            (queue.workers_dir / name).write_text(
                json.dumps(
                    {
                        "format": 1,
                        "worker": name,
                        "host": host,
                        "claimed": claimed,
                        "claim_batches": 1,
                        "jobs_done": done,
                        "jobs_failed": 0,
                        "gc_sweeps": 0,
                    }
                )
            )
        stats = queue.worker_stats()
        assert stats["workers"] == 3
        assert stats["claimed"] == 9
        assert stats["hosts"]["alpha"] == {
            "workers": 2,
            "claimed": 4,
            "jobs_done": 3,
            "jobs_failed": 0,
            "gc_sweeps": 0,
            "probes": {},
            "preferred_engines": [],
        }
        assert stats["hosts"]["beta"]["workers"] == 1
        # Pre-host-tag files aggregate under the unknown-host bucket.
        (queue.workers_dir / "legacy.json").write_text(
            '{"format": 1, "claimed": 2, "claim_batches": 1}'
        )
        assert queue.worker_stats()["hosts"][""]["claimed"] == 2


class TestCompletionCore:
    """The shared event-driven completion core the driver waits on."""

    def _complete(self, queue, fingerprint, cycles=1):
        claimed = queue.claim("w1")
        assert claimed is not None
        queue.complete(claimed, {"stats": {"cycles": cycles}}, "w1")
        return claimed

    def test_wait_for_markers_returns_existing_markers(self, tmp_path):
        from repro.harness.completion import QueueEventCore

        queue = WorkQueue(tmp_path, ttl=30)
        fingerprint = queue.enqueue(_job())
        self._complete(queue, fingerprint)
        with QueueEventCore(queue, poll_floor=0.01) as core:
            markers = core.wait_for_markers([fingerprint])
        assert markers[fingerprint]["payload"] == {"stats": {"cycles": 1}}

    def test_assist_executes_the_job_itself(self, tmp_path):
        from repro.harness.completion import QueueEventCore

        queue = WorkQueue(tmp_path, ttl=30)
        fingerprint = queue.enqueue(_job())
        with QueueEventCore(queue, poll_floor=0.01, assist=True) as core:
            markers = core.wait_for_markers([fingerprint])
        assert "stats" in markers[fingerprint]["payload"]
        assert core.assists_run == 1

    def test_poisoned_job_raises_with_the_recorded_reason(self, tmp_path):
        from repro.harness.completion import QueueEventCore

        queue = WorkQueue(tmp_path, ttl=30)
        fingerprint = queue.enqueue(_job(max_attempts=1))
        claimed = queue.claim("w1")
        assert not queue.fail(claimed, "synthetic failure", "w1")
        with QueueEventCore(queue, poll_floor=0.01) as core:
            with pytest.raises(RuntimeError, match="synthetic failure"):
                core.wait_for_markers([fingerprint])

    def test_stall_timeout_bounds_inactivity(self, tmp_path):
        from repro.harness.completion import QueueEventCore

        queue = WorkQueue(tmp_path, ttl=30)
        fingerprint = queue.enqueue(_job())
        core = QueueEventCore(
            queue, poll_floor=0.01, poll_ceiling=0.02, stall_timeout=0.2
        )
        # Nobody serves the queue and assist is off: only the stall
        # clock can end this wait.
        with core, pytest.raises(TimeoutError, match="stalled"):
            core.wait_for_markers([fingerprint])

    def test_subscriptions_are_one_shot_and_counted(self, tmp_path):
        from repro.harness.completion import QueueEventCore

        queue = WorkQueue(tmp_path, ttl=30)
        fingerprint = queue.enqueue(_job())
        events = []
        with QueueEventCore(queue, poll_floor=0.01) as core:
            core.watch(fingerprint, events.append)
            core.watch(fingerprint, events.append)
            assert core.subscriber_count(fingerprint) == 2
            assert core.watched() == {fingerprint}
            self._complete(queue, fingerprint)
            while not events:
                core.step()
        assert len(events) == 2  # both subscribers fired once
        assert core.subscriber_count(fingerprint) == 0
        assert all(event.kind == "done" for event in events)

    def test_wake_interrupts_an_idle_wait_from_another_thread(self, tmp_path):
        import threading

        from repro.harness.completion import QueueEventCore

        queue = WorkQueue(tmp_path, ttl=30)
        with QueueEventCore(queue, poll_floor=5.0, poll_ceiling=5.0) as core:
            core.step()  # consume the immediate first scan
            timer = threading.Timer(0.05, core.wake)
            timer.start()
            started = time.monotonic()
            core.step()  # would block ~5s without the wake
            assert time.monotonic() - started < 2.0
            timer.join()

    def test_idle_scans_back_off_floor_to_ceiling(self, tmp_path):
        from repro.harness.completion import QueueEventCore

        queue = WorkQueue(tmp_path, ttl=30)
        fingerprint = queue.enqueue(_job())
        with QueueEventCore(queue, poll_floor=0.01, poll_ceiling=0.05) as core:
            core.watch(fingerprint, lambda event: None)
            assert core._interval == core.poll_floor
            # Nobody serves the queue: each unproductive scan doubles the
            # interval until it saturates at the ceiling, never beyond.
            observed = []
            for _ in range(6):
                assert core._scan() is False
                observed.append(core._interval)
            assert observed[0] == pytest.approx(0.02)
            assert observed[1] == pytest.approx(0.04)
            assert all(value <= core.poll_ceiling for value in observed)
            assert observed[-1] == pytest.approx(core.poll_ceiling)

    def test_progress_resets_the_backed_off_interval(self, tmp_path):
        from repro.harness.completion import QueueEventCore

        queue = WorkQueue(tmp_path, ttl=30)
        fingerprint = queue.enqueue(_job())
        with QueueEventCore(queue, poll_floor=0.01, poll_ceiling=0.08) as core:
            events = []
            core.watch(fingerprint, events.append)
            for _ in range(5):
                core._scan()  # idle: back off toward the ceiling
            assert core._interval > core.poll_floor
            self._complete(queue, fingerprint)
            assert core._scan() is True  # the marker lands: progress
            assert events and events[0].kind == "done"
            assert core._interval == core.poll_floor
            assert core.markers_seen == 1

    def test_new_watch_resets_a_backed_off_interval(self, tmp_path):
        from repro.harness.completion import QueueEventCore

        queue = WorkQueue(tmp_path, ttl=30)
        first = queue.enqueue(_job())
        with QueueEventCore(queue, poll_floor=0.01, poll_ceiling=0.08) as core:
            core.watch(first, lambda event: None)
            for _ in range(5):
                core._scan()
            assert core._interval == pytest.approx(core.poll_ceiling)
            # A fresh subscriber must not inherit the idle backoff: its
            # marker may already exist and deserves a floor-rate scan.
            second = queue.enqueue(_job(technique="noop"))
            core.watch(second, lambda event: None)
            assert core._interval == core.poll_floor
