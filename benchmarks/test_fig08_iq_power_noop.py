"""Figure 8: dynamic and static IQ power savings for the NOOP technique."""

from figure_report import report
from repro.harness.figures import figure8


def test_figure8_iq_power_noop(benchmark, runner):
    figure = benchmark.pedantic(figure8, args=(runner,), rounds=1, iterations=1)
    report(
        "Figure 8 - IQ power savings, NOOP (paper: 47% dyn / 31% static; "
        "abella 39%/30%; nonEmpty lower than ours)",
        figure,
    )
    dynamic = figure.series["dynamic"]
    static = figure.series["static"]
    # Who-wins ordering from the paper: the software scheme saves more
    # dynamic IQ power than wakeup gating alone (nonEmpty).
    assert dynamic["SPECINT"] > dynamic["nonEmpty"] > 0.0
    # Resizing also yields substantial static savings (nonEmpty gives none).
    assert static["SPECINT"] > 10.0
    assert 20.0 < dynamic["SPECINT"] < 70.0
