"""Set-associative caches and the two-level memory hierarchy of table 1.

The hierarchy is: 64KB 2-way L1 instruction cache (1-cycle hit), 64KB 4-way
L1 data cache (2-cycle hit) and a unified 512KB 8-way L2 (10-cycle hit,
50-cycle miss to memory).  Caches use true LRU within a set, which is cheap
at these associativities and deterministic for tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch.config import CacheConfig, ProcessorConfig


class SetAssociativeCache:
    """One cache level with LRU replacement."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.num_sets = config.num_sets
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self._line_bytes = config.line_bytes
        self._assoc = config.assoc
        self.accesses = 0
        self.misses = 0

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self._line_bytes
        return line % self.num_sets, line

    def access(self, address: int) -> bool:
        """Access ``address``; return True on a hit and update LRU state."""
        self.accesses += 1
        line = address // self._line_bytes
        entry_set = self._sets[line % self.num_sets]
        if line in entry_set:
            if entry_set[0] != line:
                entry_set.remove(line)
                entry_set.insert(0, line)
            return True
        self.misses += 1
        entry_set.insert(0, line)
        if len(entry_set) > self._assoc:
            entry_set.pop()
        return False

    def probe(self, address: int) -> bool:
        """Check residency without updating LRU or counters."""
        set_index, line = self._locate(address)
        return line in self._sets[set_index]

    @property
    def miss_rate(self) -> float:
        """Observed miss rate."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


@dataclass
class MemoryAccessResult:
    """Latency and hit/miss breakdown of one memory access."""

    latency: int
    l1_hit: bool
    l2_hit: bool


class MemoryHierarchy:
    """L1 instruction, L1 data and unified L2 caches plus main memory."""

    def __init__(self, config: ProcessorConfig):
        self.config = config
        self.l1i = SetAssociativeCache(config.l1i)
        self.l1d = SetAssociativeCache(config.l1d)
        self.l2 = SetAssociativeCache(config.l2)
        # Precomputed latency tiers for the tuple-returning fast paths.
        self._l1i_hit = config.l1i.hit_latency
        self._l1i_l2 = config.l1i.hit_latency + config.l2.hit_latency
        self._l1i_mem = self._l1i_l2 + config.l2_miss_latency
        self._l1d_hit = config.l1d.hit_latency
        self._l1d_l2 = config.l1d.hit_latency + config.l2.hit_latency
        self._l1d_mem = self._l1d_l2 + config.l2_miss_latency

    def instruction_fetch(self, address: int) -> MemoryAccessResult:
        """Fetch the line containing ``address``; return its latency."""
        return self._access(self.l1i, address)

    def data_access(self, address: int) -> MemoryAccessResult:
        """Load/store access to ``address``; return its latency."""
        return self._access(self.l1d, address)

    def instruction_fetch_fast(self, address: int) -> tuple[int, bool, bool]:
        """``(latency, l1_hit, l2_hit)`` without a result-object allocation."""
        if self.l1i.access(address):
            return (self._l1i_hit, True, True)
        if self.l2.access(address):
            return (self._l1i_l2, False, True)
        return (self._l1i_mem, False, False)

    def data_access_fast(self, address: int) -> tuple[int, bool, bool]:
        """``(latency, l1_hit, l2_hit)`` without a result-object allocation."""
        if self.l1d.access(address):
            return (self._l1d_hit, True, True)
        if self.l2.access(address):
            return (self._l1d_l2, False, True)
        return (self._l1d_mem, False, False)

    def _access(self, l1: SetAssociativeCache, address: int) -> MemoryAccessResult:
        if l1.access(address):
            return MemoryAccessResult(latency=l1.config.hit_latency, l1_hit=True, l2_hit=True)
        if self.l2.access(address):
            latency = l1.config.hit_latency + self.l2.config.hit_latency
            return MemoryAccessResult(latency=latency, l1_hit=False, l2_hit=True)
        latency = (
            l1.config.hit_latency
            + self.l2.config.hit_latency
            + self.config.l2_miss_latency
        )
        return MemoryAccessResult(latency=latency, l1_hit=False, l2_hit=False)
