"""Trace pre-decode and replay: flat arrays instead of object streams.

The timing core is trace-driven, and the committed dynamic instruction
stream is a pure function of (program, instruction budget): no timing
decision ever feeds back into architectural state.  This module therefore
runs the functional emulator **once** per (program, budget) and lowers the
stream into a :class:`DecodedTrace` — parallel flat arrays holding, per
dynamic instruction, the program counter, the next PC, the branch outcome,
the effective memory address, and the pre-decoded timing attributes
(classification flags, execution latency, functional-unit class ordinal,
issue-queue tag, rename operand specs).  The per-cycle hot path in
:mod:`repro.uarch.core` then *replays* these arrays by index: no
interpreter dispatch, no attribute chains through
``DynamicInstruction.static``, and no per-instruction object allocation
remain on the timing loop.

Three reuse tiers sit in front of the emulator:

1. an **in-process memo** keyed by program identity and budget, so every
   technique simulated against the same program object shares one
   emulation (the (benchmark × technique) grid emulates each benchmark
   once, not once per technique);
2. an optional **on-disk cache** (:class:`TraceCache`), content-addressed
   like :mod:`repro.harness.cache`: the key digests the program text, the
   instruction budget and the emulator's own source bytes, so editing the
   emulator (or regenerating a workload with different traits) can never
   resurrect a stale trace.  Only the emulation *results* (pc, next_pc,
   taken, mem_address) are persisted; the pre-decoded attributes are
   recomputed from the program on load, which keeps the format small and
   immune to decode-layer changes;
3. **live emulation** (``live=True`` or the ``REPRO_LIVE_EMULATION``
   environment variable), which bypasses both tiers and re-runs the
   interpreter — the reference path the equivalence tests compare against.

Module-level :data:`trace_events` counters record emulations, memo hits
and disk hits/misses/stores so tests can assert that a warm cache skips
re-emulation entirely.
"""

from __future__ import annotations

import array
import functools
import hashlib
import json
import os
import sys
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Iterable, Optional

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode, default_latency, fu_class
from repro.uarch.emulator import DynamicInstruction, FunctionalEmulator, ProgramLayout
from repro.uarch.functional_units import FU_INDEX

#: Bump when the on-disk payload layout changes.
TRACE_FORMAT_VERSION = 1

# Per-instruction classification flags (one byte per dynamic instruction).
F_HINT = 1
F_NOP = 2
F_BRANCH = 4
F_CALL = 8
F_RET = 16
F_LOAD = 32
F_STORE = 64
#: Any instruction that must consult the branch predictor at fetch.
F_CONTROL = F_BRANCH | F_CALL | F_RET

#: Counters for tests and reports: how often the emulator actually ran
#: versus how often a decoded trace was reused.
trace_events: dict[str, int] = {
    "emulations": 0,
    "memo_hits": 0,
    "disk_hits": 0,
    "disk_misses": 0,
    "disk_stores": 0,
}


def reset_trace_events() -> None:
    """Zero the :data:`trace_events` counters (test isolation)."""
    for key in trace_events:
        trace_events[key] = 0


class DecodedTrace:
    """The committed dynamic instruction stream as parallel flat arrays.

    Every array has one element per committed dynamic instruction; the
    sequence number *is* the index.  ``statics`` holds the unique static
    :class:`~repro.isa.instruction.Instruction` objects (needed only off
    the hot path: hint payloads and debugging), referenced through
    ``static_idx``.

    Attributes:
        length: number of dynamic instructions.
        pc / next_pc: instruction address and successor address.
        taken: 1 when a control transfer was taken (bytearray).
        mem_addr: effective address for loads/stores, 0 otherwise.
        flags: per-instruction classification bits (``F_*`` constants).
        latency: base execution latency in cycles (bytearray).
        fu_idx: functional-unit class ordinal (``FU_ORDER`` index).
        iq_tag: Extension/Improved issue-queue tag or None.
        rename_specs: per-instruction shared tuples
            ``(int_src_idx, fp_src_idx, int_dest_idx, fp_dest_idx)`` of
            architectural register indices, precomputed per static
            instruction so rename never touches ``Reg`` objects.
    """

    __slots__ = (
        "length",
        "statics",
        "static_idx",
        "pc",
        "next_pc",
        "taken",
        "mem_addr",
        "flags",
        "latency",
        "fu_idx",
        "iq_tag",
        "rename_specs",
    )

    def __init__(self) -> None:
        self.length = 0
        self.statics: list[Instruction] = []
        self.static_idx: list[int] = []
        self.pc: list[int] = []
        self.next_pc: list[int] = []
        self.taken = bytearray()
        self.mem_addr: list[int] = []
        self.flags = bytearray()
        self.latency = bytearray()
        self.fu_idx = bytearray()
        self.iq_tag: list[Optional[int]] = []
        self.rename_specs: list[tuple] = []

    def __len__(self) -> int:
        return self.length

    # ------------------------------------------------------------------
    @staticmethod
    def _static_decode(instr: Instruction) -> tuple:
        """Pre-decode one static instruction into hot-path attributes.

        Returns ``(flags, latency, fu_ordinal, iq_tag, rename_spec)``.
        """
        opcode = instr.opcode
        flags = 0
        if instr.is_hint:
            flags |= F_HINT
        if opcode is Opcode.NOP:
            flags |= F_NOP
        if instr.is_branch:
            flags |= F_BRANCH
        if instr.is_call:
            flags |= F_CALL
        if instr.is_return:
            flags |= F_RET
        if instr.is_load:
            flags |= F_LOAD
        if instr.is_store:
            flags |= F_STORE
        int_srcs = tuple(reg.index for reg in instr.srcs if not reg.is_fp)
        fp_srcs = tuple(reg.index for reg in instr.srcs if reg.is_fp)
        int_dests = tuple(reg.index for reg in instr.dests if not reg.is_fp)
        fp_dests = tuple(reg.index for reg in instr.dests if reg.is_fp)
        return (
            flags,
            default_latency(opcode),
            FU_INDEX[fu_class(opcode)],
            instr.iq_tag,
            (int_srcs, fp_srcs, int_dests, fp_dests),
        )

    @classmethod
    def from_entries(
        cls,
        statics_per_entry: Iterable[Instruction],
        pcs: list[int],
        next_pcs: list[int],
        takens: Iterable[int],
        mem_addrs: list[int],
    ) -> "DecodedTrace":
        """Build a trace from per-entry statics plus emulation results."""
        trace = cls()
        index_of: dict[int, int] = {}
        statics = trace.statics
        static_idx = trace.static_idx
        idx_append = static_idx.append
        index_get = index_of.get
        decoded: list[tuple] = []  # per unique static
        static_decode = cls._static_decode
        for instr in statics_per_entry:
            key = id(instr)
            sidx = index_get(key)
            if sidx is None:
                sidx = len(statics)
                index_of[key] = sidx
                statics.append(instr)
                decoded.append(static_decode(instr))
            idx_append(sidx)
        # Scatter the per-static attributes per entry with C-level maps.
        if decoded:
            flags_by, lat_by, fu_by, tag_by, spec_by = zip(*decoded)
            trace.flags = bytearray(map(flags_by.__getitem__, static_idx))
            trace.latency = bytearray(map(lat_by.__getitem__, static_idx))
            trace.fu_idx = bytearray(map(fu_by.__getitem__, static_idx))
            trace.iq_tag = list(map(tag_by.__getitem__, static_idx))
            trace.rename_specs = list(map(spec_by.__getitem__, static_idx))
        trace.pc = list(pcs)
        trace.next_pc = list(next_pcs)
        trace.taken = bytearray(1 if t else 0 for t in takens)
        trace.mem_addr = list(mem_addrs)
        trace.length = len(trace.pc)
        return trace

    @classmethod
    def from_dynamic_stream(
        cls, dyns: Iterable[DynamicInstruction]
    ) -> "DecodedTrace":
        """Lower a :class:`DynamicInstruction` stream into flat arrays."""
        statics: list[Instruction] = []
        pcs: list[int] = []
        next_pcs: list[int] = []
        takens: list[int] = []
        mems: list[int] = []
        for dyn in dyns:
            statics.append(dyn.static)
            pcs.append(dyn.pc)
            next_pcs.append(dyn.next_pc)
            takens.append(1 if dyn.taken else 0)
            mems.append(dyn.mem_address if dyn.mem_address is not None else 0)
        return cls.from_entries(statics, pcs, next_pcs, takens, mems)


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=1)
def _emulator_code_digest() -> str:
    """Digest of every source module the emulated stream depends on.

    The stored arrays are a function of the emulator's semantics — which
    include the ISA definitions (opcodes, register constants, instruction
    and program structure), not just ``emulator.py`` — and the decode
    layer defines what the replay core reads back.  Any of them changing
    must invalidate every persisted trace.
    """
    from repro.isa import instruction, opcodes, program, registers
    from repro.uarch import emulator as emulator_module

    digest = hashlib.sha256()
    for module in (emulator_module, instruction, opcodes, program, registers):
        digest.update(Path(module.__file__).read_bytes())
    digest.update(Path(__file__).read_bytes())
    return digest.hexdigest()


def program_digest(program) -> str:
    """SHA-256 over the program's full static content, in layout order.

    Covers everything the emulator reads: procedure order and names,
    library flags, block labels, and for every instruction the opcode,
    operand registers, immediate, control targets, hint payload and
    issue-queue tag.  Two programs with identical digests produce
    identical dynamic streams under identical budgets.

    Deliberately *not* memoised by object identity: programs may be
    mutated in place between simulations (``build_benchmark(fresh=True)``
    exists exactly for that), and an identity-keyed memo would keep
    serving the pre-mutation digest.  The walk is linear in static size
    and negligible next to a simulation.
    """
    digest = hashlib.sha256()
    feed = digest.update
    feed(repr(program.entry).encode())
    for procedure in program.procedures.values():
        feed(repr((procedure.name, procedure.is_library)).encode())
        for block in procedure.blocks:
            feed(repr(block.label).encode())
            for instr in block.instructions:
                feed(
                    repr(
                        (
                            instr.opcode.value,
                            tuple((r.index, r.is_fp) for r in instr.dests),
                            tuple((r.index, r.is_fp) for r in instr.srcs),
                            instr.imm,
                            instr.target,
                            instr.call_target,
                            instr.hint_value,
                            instr.iq_tag,
                        )
                    ).encode()
                )
    return digest.hexdigest()


def _fingerprint_from_digest(digest: str, max_instructions: int) -> str:
    payload = {
        "format": TRACE_FORMAT_VERSION,
        "emulator": _emulator_code_digest(),
        "program": digest,
        "max_instructions": max_instructions,
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def trace_fingerprint(program, max_instructions: int) -> str:
    """Content hash identifying one decoded trace (the disk-cache key)."""
    return _fingerprint_from_digest(program_digest(program), max_instructions)


# ----------------------------------------------------------------------
# On-disk cache
# ----------------------------------------------------------------------
class TraceCache:
    """One-file-per-trace binary cache of emulation results.

    Stores only what the emulator produced (pc, next_pc, taken,
    mem_address); static instructions are re-resolved from the program's
    deterministic layout on load and the timing attributes re-decoded, so
    the payload stays compact and decode-layer changes need no format
    bump.  The file is a one-line JSON header followed by the raw
    little-endian ``int64`` arrays — writing is a handful of
    ``tobytes``/``write`` calls rather than tens of thousands of JSON
    integer encodes, which matters because the store sits on the
    cold-path of every first simulation.  Writes are atomic (temp file +
    ``os.replace``), making one directory safe to share between
    concurrent workers — the same discipline as
    :class:`repro.harness.cache.ResultCache`.
    """

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.trace.bin"

    def load(self, fingerprint: str, program) -> Optional[DecodedTrace]:
        """Rebuild the decoded trace for ``fingerprint``, or None on a miss."""
        try:
            with open(self.path_for(fingerprint), "rb") as handle:
                header_line = handle.readline()
                header = json.loads(header_line)
                if header.get("format") != TRACE_FORMAT_VERSION:
                    raise ValueError("stale trace format")
                length = header["length"]
                pcs = array.array("q")
                next_pcs = array.array("q")
                mems = array.array("q")
                pcs.frombytes(handle.read(8 * length))
                next_pcs.frombytes(handle.read(8 * length))
                mems.frombytes(handle.read(8 * length))
                taken = bytearray(handle.read(length))
                if (
                    len(pcs) != length
                    or len(next_pcs) != length
                    or len(mems) != length
                    or len(taken) != length
                ):
                    raise ValueError("truncated trace payload")
                if header["byteorder"] != sys.byteorder:
                    for arr in (pcs, next_pcs, mems):
                        arr.byteswap()
            # A stored pc that doesn't resolve to a static instruction of
            # this program means corruption (or a fingerprint collision);
            # the KeyError below treats it as a miss like any other
            # malformed payload, forcing a clean re-emulation.
            instr_by_pc = _instructions_by_pc(program)
            trace = DecodedTrace.from_entries(
                (instr_by_pc[pc] for pc in pcs),
                list(pcs),
                list(next_pcs),
                taken,
                list(mems),
            )
        except (FileNotFoundError, ValueError, KeyError, json.JSONDecodeError):
            self.misses += 1
            trace_events["disk_misses"] += 1
            return None
        self.hits += 1
        trace_events["disk_hits"] += 1
        return trace

    def store(self, fingerprint: str, trace: DecodedTrace) -> Path:
        """Atomically persist ``trace`` under ``fingerprint``."""
        self.directory.mkdir(parents=True, exist_ok=True)
        header = {
            "format": TRACE_FORMAT_VERSION,
            "length": trace.length,
            "byteorder": sys.byteorder,
        }
        path = self.path_for(fingerprint)
        fd, temp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".bin"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(json.dumps(header, separators=(",", ":")).encode())
                handle.write(b"\n")
                handle.write(array.array("q", trace.pc).tobytes())
                handle.write(array.array("q", trace.next_pc).tobytes())
                handle.write(array.array("q", trace.mem_addr).tobytes())
                handle.write(bytes(trace.taken))
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except FileNotFoundError:
                pass
            raise
        self.stores += 1
        trace_events["disk_stores"] += 1
        return path

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(
            1
            for path in self.directory.glob("*.trace.bin")
            if not path.name.startswith(".")
        )


def _instructions_by_pc(program) -> dict[int, Instruction]:
    """Map every static instruction's layout PC back to the instruction.

    The layout is deterministic for a given program, so the PCs stored on
    disk resolve to the same statics in any process — unlike instruction
    ``uid``s, which are assigned by a process-local counter.
    """
    layout = ProgramLayout.for_program(program)
    by_uid: dict[int, Instruction] = {}
    for procedure in program.procedures.values():
        for block in procedure.blocks:
            for instr in block.instructions:
                by_uid[instr.uid] = instr
    return {pc: by_uid[uid] for uid, pc in layout.instruction_pc.items()}


# ----------------------------------------------------------------------
# Front door
# ----------------------------------------------------------------------
def emulate_trace(program, max_instructions: int) -> DecodedTrace:
    """Run the functional emulator and lower its stream (always live)."""
    trace_events["emulations"] += 1
    emulator = FunctionalEmulator(program)
    statics, pcs, next_pcs, takens, mems = emulator.run_collect(max_instructions)
    return DecodedTrace.from_entries(
        statics,
        pcs,
        next_pcs,
        takens,
        [mem if mem is not None else 0 for mem in mems],
    )


#: In-process memo of decoded traces, keyed by (program content digest,
#: budget) so in-place program mutation can never resurface a stale
#: trace.  Bounded: decoded traces are large, and a long-lived grid run
#: touches many (program, budget) pairs exactly once each after warm-up.
_MEMO_CAPACITY = 8
_trace_memo: "OrderedDict[tuple[str, int], DecodedTrace]" = OrderedDict()


def clear_trace_memo() -> None:
    """Drop every memoised decoded trace (test isolation)."""
    _trace_memo.clear()


def get_decoded_trace(
    program,
    max_instructions: int,
    cache: Optional[TraceCache] = None,
    live: Optional[bool] = None,
) -> DecodedTrace:
    """The decoded trace for (program, budget), reusing every tier allowed.

    Args:
        program: the IR program to (re)emulate.
        max_instructions: dynamic instruction budget.
        cache: optional on-disk :class:`TraceCache`.
        live: force a fresh emulation, bypassing the memo and the disk
            cache (the reference path).  Defaults to the
            ``REPRO_LIVE_EMULATION`` environment variable; an explicit
            ``False`` overrides the variable.
    """
    if live is None:
        live = bool(os.environ.get("REPRO_LIVE_EMULATION"))
    if live:
        return emulate_trace(program, max_instructions)
    digest = program_digest(program)
    key = (digest, max_instructions)
    hit = _trace_memo.get(key)
    if hit is not None:
        trace_events["memo_hits"] += 1
        _trace_memo.move_to_end(key)
        return hit
    trace: Optional[DecodedTrace] = None
    if cache is not None:
        fingerprint = _fingerprint_from_digest(digest, max_instructions)
        trace = cache.load(fingerprint, program)
    if trace is None:
        trace = emulate_trace(program, max_instructions)
        if cache is not None:
            cache.store(fingerprint, trace)
    _trace_memo[key] = trace
    while len(_trace_memo) > _MEMO_CAPACITY:
        _trace_memo.popitem(last=False)
    return trace
