"""Functional (architectural) emulation of IR programs.

The timing simulator is trace-driven: this emulator executes a program's
semantics -- register values, memory contents, branch outcomes, call/return
nesting -- and yields the committed dynamic instruction stream, annotated
with everything the timing model needs (program counter, branch outcome and
target, effective memory address).  This mirrors how SimpleScalar's
functional core feeds its timing core.

Determinism matters for reproducibility: uninitialised memory reads return a
value derived from the address by a fixed hash, so every run of a given
program produces exactly the same trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import NUM_ARCH_REGS, NUM_FP_ARCH_REGS, ZERO_REG


_VALUE_MASK = (1 << 63) - 1
_UNINIT_HASH_MULTIPLIER = 2654435761


class EmulationError(Exception):
    """Raised when a program cannot be executed (bad targets, empty blocks...)."""


class EmulationLimitExceeded(Exception):
    """Raised when the call-depth safety limit is exceeded."""


@dataclass
class ProgramLayout:
    """Static address assignment for every instruction of a program.

    Instructions get consecutive 4-byte addresses, procedure by procedure
    and block by block, so the instruction cache sees realistic spatial
    locality and every static instruction has a unique PC for the branch
    predictor and BTB.
    """

    instruction_pc: dict[int, int] = field(default_factory=dict)  # uid -> pc
    block_pc: dict[tuple[str, str], int] = field(default_factory=dict)
    procedure_pc: dict[str, int] = field(default_factory=dict)
    code_size: int = 0

    @classmethod
    def for_program(cls, program: Program, base_address: int = 0x1000) -> "ProgramLayout":
        """Lay out ``program`` starting at ``base_address``."""
        layout = cls()
        pc = base_address
        for procedure in program.procedures.values():
            layout.procedure_pc[procedure.name] = pc
            for block in procedure.blocks:
                layout.block_pc[(procedure.name, block.label)] = pc
                for instruction in block.instructions:
                    layout.instruction_pc[instruction.uid] = pc
                    pc += 4
        layout.code_size = pc - base_address
        return layout


@dataclass
class DynamicInstruction:
    """One element of the committed dynamic instruction stream.

    Attributes:
        static: the static instruction executed.
        seq: sequence number in commit order (0-based).
        pc: the instruction's address.
        next_pc: address of the next dynamic instruction.
        taken: for control transfers, whether the transfer was taken.
        mem_address: effective address for loads and stores.
    """

    static: Instruction
    seq: int
    pc: int
    next_pc: int
    taken: bool = False
    mem_address: Optional[int] = None

    @property
    def is_branch(self) -> bool:
        return self.static.is_branch

    @property
    def is_load(self) -> bool:
        return self.static.is_load

    @property
    def is_store(self) -> bool:
        return self.static.is_store

    @property
    def is_hint(self) -> bool:
        return self.static.is_hint


@dataclass
class _Position:
    """A point in the static program: procedure, block index, instruction index."""

    procedure: str
    block_index: int
    instr_index: int


class FunctionalEmulator:
    """Architectural interpreter for IR programs."""

    #: Base address of the data segment (separated from code addresses).
    DATA_BASE = 0x100000

    #: Default stack pointer value.
    STACK_BASE = 0x7F0000

    def __init__(self, program: Program, max_call_depth: int = 256):
        program.validate()
        self.program = program
        self.layout = ProgramLayout.for_program(program)
        self.max_call_depth = max_call_depth

        self.registers = [0] * NUM_ARCH_REGS
        self.fp_registers = [0.0] * NUM_FP_ARCH_REGS
        self.registers[29] = self.STACK_BASE  # conventional stack pointer
        self.memory: dict[int, int] = {}
        self.instructions_executed = 0

    # ------------------------------------------------------------------
    # Memory helpers
    # ------------------------------------------------------------------
    def read_memory(self, address: int) -> int:
        """Read ``address``; uninitialised locations return a deterministic value."""
        address &= _VALUE_MASK
        if address in self.memory:
            return self.memory[address]
        return (address * _UNINIT_HASH_MULTIPLIER) & 0xFFFF

    def write_memory(self, address: int, value: int) -> None:
        """Write ``value`` to ``address``."""
        self.memory[address & _VALUE_MASK] = value & _VALUE_MASK

    # ------------------------------------------------------------------
    # Register helpers
    # ------------------------------------------------------------------
    def _read_reg(self, reg) -> int | float:
        if reg.is_fp:
            return self.fp_registers[reg.index]
        if reg.index == ZERO_REG:
            return 0
        return self.registers[reg.index]

    def _write_reg(self, reg, value) -> None:
        if reg.is_fp:
            self.fp_registers[reg.index] = float(value)
            return
        if reg.index == ZERO_REG:
            return
        self.registers[reg.index] = int(value) & _VALUE_MASK

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, max_instructions: int = 1_000_000) -> Iterator[DynamicInstruction]:
        """Execute from the program entry; yield committed dynamic instructions.

        Execution stops at ``HALT``, when the entry procedure returns, or
        after ``max_instructions`` dynamic instructions.
        """
        program = self.program
        position = _Position(program.entry, 0, 0)
        call_stack: list[_Position] = []
        seq = 0

        while seq < max_instructions:
            procedure = program.procedures[position.procedure]
            if position.block_index >= len(procedure.blocks):
                break
            block = procedure.blocks[position.block_index]
            if position.instr_index >= len(block.instructions):
                # Fall off the end of a block: continue with the next block.
                position = _Position(position.procedure, position.block_index + 1, 0)
                continue

            instr = block.instructions[position.instr_index]
            pc = self.layout.instruction_pc[instr.uid]
            taken = False
            mem_address: Optional[int] = None
            next_position = _Position(
                position.procedure, position.block_index, position.instr_index + 1
            )
            halt = False

            opcode = instr.opcode
            if opcode is Opcode.HALT:
                halt = True
            elif opcode is Opcode.CALL:
                if len(call_stack) >= self.max_call_depth:
                    raise EmulationLimitExceeded(
                        f"call depth exceeded {self.max_call_depth} in {position.procedure}"
                    )
                call_stack.append(next_position)
                next_position = _Position(instr.call_target, 0, 0)
                taken = True
            elif opcode is Opcode.RET:
                taken = True
                if call_stack:
                    next_position = call_stack.pop()
                else:
                    halt = True
            elif opcode is Opcode.JUMP:
                taken = True
                next_position = _Position(
                    position.procedure, procedure.block_index(instr.target), 0
                )
            elif opcode in (Opcode.BEQZ, Opcode.BNEZ):
                value = self._read_reg(instr.srcs[0])
                taken = (value == 0) if opcode is Opcode.BEQZ else (value != 0)
                if taken:
                    next_position = _Position(
                        position.procedure, procedure.block_index(instr.target), 0
                    )
            elif opcode is Opcode.LOAD:
                base = self._read_reg(instr.srcs[0])
                mem_address = (int(base) + instr.imm) & _VALUE_MASK
                self._write_reg(instr.dests[0], self.read_memory(mem_address))
            elif opcode is Opcode.STORE:
                base = self._read_reg(instr.srcs[0])
                mem_address = (int(base) + instr.imm) & _VALUE_MASK
                self.write_memory(mem_address, int(self._read_reg(instr.srcs[1])))
            elif opcode not in (Opcode.NOP, Opcode.HINT):
                self._execute_alu(instr)

            next_pc = self._position_pc(next_position, call_stack) if not halt else pc + 4
            yield DynamicInstruction(
                static=instr,
                seq=seq,
                pc=pc,
                next_pc=next_pc,
                taken=taken,
                mem_address=mem_address,
            )
            seq += 1
            self.instructions_executed = seq
            if halt:
                break
            position = next_position

    # ------------------------------------------------------------------
    def _position_pc(self, position: _Position, call_stack: list[_Position]) -> int:
        """PC of the instruction at ``position`` (best effort at block ends)."""
        procedure = self.program.procedures.get(position.procedure)
        if procedure is None or position.block_index >= len(procedure.blocks):
            return 0
        block = procedure.blocks[position.block_index]
        if position.instr_index < len(block.instructions):
            return self.layout.instruction_pc[block.instructions[position.instr_index].uid]
        # Falling off the block: the next block's first instruction.
        if position.block_index + 1 < len(procedure.blocks):
            nxt = procedure.blocks[position.block_index + 1]
            if nxt.instructions:
                return self.layout.instruction_pc[nxt.instructions[0].uid]
        return 0

    def _execute_alu(self, instr: Instruction) -> None:
        """Execute an arithmetic/logical/FP instruction."""
        opcode = instr.opcode
        srcs = [self._read_reg(reg) for reg in instr.srcs]
        a = srcs[0] if srcs else 0
        b = srcs[1] if len(srcs) > 1 else instr.imm

        if opcode is Opcode.LI:
            result = instr.imm
        elif opcode is Opcode.MOV:
            result = a
        elif opcode is Opcode.ADD:
            result = a + b
        elif opcode is Opcode.SUB:
            result = a - b
        elif opcode is Opcode.AND:
            result = int(a) & int(b)
        elif opcode is Opcode.OR:
            result = int(a) | int(b)
        elif opcode is Opcode.XOR:
            result = int(a) ^ int(b)
        elif opcode is Opcode.SHL:
            result = int(a) << (int(b) & 31)
        elif opcode is Opcode.SHR:
            result = int(a) >> (int(b) & 31)
        elif opcode is Opcode.CMP_LT:
            result = 1 if a < b else 0
        elif opcode is Opcode.CMP_EQ:
            result = 1 if a == b else 0
        elif opcode is Opcode.MUL:
            result = int(a) * int(b)
        elif opcode is Opcode.DIV:
            result = int(a) // int(b) if int(b) != 0 else 0
        elif opcode is Opcode.FADD:
            result = float(a) + float(b)
        elif opcode is Opcode.FSUB:
            result = float(a) - float(b)
        elif opcode is Opcode.FMUL:
            result = float(a) * float(b)
        elif opcode is Opcode.FDIV:
            result = float(a) / float(b) if float(b) != 0.0 else 0.0
        else:  # pragma: no cover - defensive
            result = 0

        if instr.dests:
            self._write_reg(instr.dests[0], result)
