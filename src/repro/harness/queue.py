"""Distributed work-queue execution over a shared cache directory.

The parallel experiment engine's process pool stops at one host.  This
module removes that ceiling with the smallest possible coordination
substrate: a **file-backed work queue** living inside the shared cache
directory itself, so any number of worker processes — on one machine or
many, over NFS — cooperate through nothing but the filesystem they
already share for results and traces (the cluster-of-commodity-hosts
model of Baker et al.'s cluster-computing white paper).

Queue file protocol
-------------------

All queue state lives under ``<cache_dir>/queue/``::

    queue/
      pending/<fingerprint>.json   jobs waiting for a worker
      leases/<fingerprint>.json    jobs being executed (mtime = heartbeat)
      done/<fingerprint>.json      completion markers (stats + counter deltas)
      poison/<fingerprint>.json    undecodable job envelopes, set aside

* **Envelope** — every job file is a one-object JSON envelope:
  ``{"format": 1, "kind": "simulation"|"shard", "fingerprint": ...,
  "benchmark": ..., "technique": ..., "job": <base64 pickle>}``.  The
  human-readable fields make the queue greppable; the pickled job is the
  exact :class:`~repro.harness.parallel.SimulationJob` /
  :class:`~repro.harness.shard.ShardJob` the process pool already
  ships between processes.
* **Enqueue** — write the envelope to a ``.tmp-*`` file and
  ``os.replace`` it into ``pending/`` (the same atomicity discipline as
  ``ResultCache.store``).  Enqueueing is idempotent: a fingerprint that
  is already pending, leased or done is left alone.
* **Lease** — a worker claims a job with ``os.rename(pending/f,
  leases/f)``.  Rename is atomic; when several workers race for one
  file, exactly one rename succeeds and the losers see
  ``FileNotFoundError`` and move on.  The winner rewrites the lease with
  its worker id (atomic replace) and then **heartbeats** it by touching
  the file's mtime while the simulation runs.
* **Crash recovery** — anyone (other workers, the runner) may call
  :meth:`WorkQueue.requeue_expired`: a lease whose mtime is older than
  the TTL is pushed back with ``os.rename(leases/f, pending/f)`` —
  again, exactly one reclaimer wins.  If the dead worker's job already
  has a completion marker the lease is simply dropped.
* **Complete** — the worker publishes the result through the existing
  content-addressed caches (``ResultCache.store`` for grid cells; trace
  stores happened during the run), then atomically writes
  ``done/<fingerprint>.json`` carrying the full job payload — the
  statistics and the worker's trace-cache counter deltas — and unlinks
  its lease.  Completions are **idempotent**: a job executed twice
  (a worker presumed dead that was merely slow) produces byte-identical
  payloads for the same fingerprint, and ``os.replace`` makes the last
  writer win without ever exposing a torn file.
* **Failures** — a job whose execution *raises* (as opposed to a worker
  dying) writes a marker with an ``"error"`` field instead; the runner
  surfaces it instead of waiting forever.  An envelope that cannot be
  decoded is moved to ``poison/`` so it cannot wedge the queue.

Counter exactness: each marker carries the executing worker's
trace-cache hit/miss/store/eviction deltas for that job, and the runner
folds exactly one marker per job into its own cache — ``--cache-stats``
stays exact for any number of workers on any number of hosts.

Run a worker with::

    PYTHONPATH=src python -m repro.harness.queue <cache_dir> \\
        [--ttl 60] [--poll 0.2] [--max-jobs N] [--drain] [--status]

``--drain`` exits once the queue has stayed empty for a grace period;
the default is to serve forever (a daemon on each grid host).
"""

from __future__ import annotations

import argparse
import base64
import json
import os
import pickle
import random
import socket
import threading
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.atomicio import publish_atomically
from repro.harness.cache import ResultCache, stats_from_dict
from repro.harness.parallel import SimulationJob, execute_job

#: Bump when the envelope/marker layout changes; foreign-format files
#: are poisoned (envelopes) or ignored (markers), never trusted.
QUEUE_FORMAT_VERSION = 1


def _default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}-{random.randrange(16**4):04x}"


def _atomic_write_json(directory: Path, path: Path, payload: dict) -> None:
    """Publish ``payload`` to ``path`` with the shared atomic discipline."""
    publish_atomically(
        path, lambda handle: json.dump(payload, handle, sort_keys=True)
    )


@dataclass
class ClaimedJob:
    """A leased job: the decoded work item plus its lease bookkeeping."""

    fingerprint: str
    kind: str
    job: object
    envelope: dict
    lease_path: Path


class WorkQueue:
    """File-backed job queue inside a shared cache directory.

    Attributes:
        cache_dir: the shared cache directory (results at the top level,
            ``traces/`` below it, ``queue/`` for this module's state).
        ttl: seconds without a heartbeat before a lease counts as dead.
        enqueued / claimed / completed / requeued: this process's
            traffic counters (for tests and status reports).
    """

    def __init__(self, cache_dir: str | os.PathLike, ttl: float = 60.0):
        if ttl <= 0:
            raise ValueError("ttl must be a positive number of seconds")
        self.cache_dir = Path(cache_dir)
        self.root = self.cache_dir / "queue"
        self.pending_dir = self.root / "pending"
        self.leases_dir = self.root / "leases"
        self.done_dir = self.root / "done"
        self.poison_dir = self.root / "poison"
        # Create the protocol directories once, up front: the rename
        # choreography (claim, requeue) assumes both endpoints exist,
        # and doing it here keeps mkdir out of the per-claim hot loop.
        for directory in (
            self.pending_dir,
            self.leases_dir,
            self.done_dir,
            self.poison_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        self.ttl = ttl
        self.enqueued = 0
        self.claimed = 0
        self.completed = 0
        self.requeued = 0

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def pending_path(self, fingerprint: str) -> Path:
        return self.pending_dir / f"{fingerprint}.json"

    def lease_path(self, fingerprint: str) -> Path:
        return self.leases_dir / f"{fingerprint}.json"

    def done_path(self, fingerprint: str) -> Path:
        return self.done_dir / f"{fingerprint}.json"

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def enqueue(self, job, kind: Optional[str] = None) -> str:
        """Publish ``job`` for any worker to claim; idempotent.

        ``job`` must expose ``fingerprint()`` and pickle cleanly (both
        :class:`SimulationJob` and :class:`~repro.harness.shard.ShardJob`
        do).  A fingerprint that is already pending, leased or
        successfully completed is left untouched, so re-running a driver
        against a half-served queue never duplicates work.  A marker
        recording an *error* is retryable, not terminal: it is consumed
        here (deleted) and the job queued afresh — otherwise one
        transient worker failure (disk full, OOM) would poison its
        fingerprint forever.
        """
        if kind is None:
            kind = "simulation" if isinstance(job, SimulationJob) else "shard"
        fingerprint = job.fingerprint()
        marker = self.done_marker(fingerprint)
        if marker is not None:
            if "error" not in marker:
                return fingerprint
            try:
                os.unlink(self.done_path(fingerprint))
            except OSError:  # pragma: no cover - concurrent retry
                pass
        if (
            self.lease_path(fingerprint).exists()
            or self.pending_path(fingerprint).exists()
        ):
            return fingerprint
        envelope = {
            "format": QUEUE_FORMAT_VERSION,
            "kind": kind,
            "fingerprint": fingerprint,
            "benchmark": getattr(job, "benchmark", ""),
            "technique": getattr(job, "technique", ""),
            "job": base64.b64encode(pickle.dumps(job)).decode("ascii"),
        }
        _atomic_write_json(self.pending_dir, self.pending_path(fingerprint), envelope)
        self.enqueued += 1
        return fingerprint

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def claim(self, worker_id: Optional[str] = None) -> Optional[ClaimedJob]:
        """Atomically lease one pending job; None when nothing is claimable.

        Candidates are tried in random order so a fleet of workers
        scanning the same directory mostly avoids colliding on one file;
        the rename makes any remaining collision safe (one winner).
        """
        worker_id = worker_id or _default_worker_id()
        try:
            names = [
                name
                for name in os.listdir(self.pending_dir)
                if name.endswith(".json") and not name.startswith(".")
            ]
        except FileNotFoundError:
            return None
        random.shuffle(names)
        for name in names:
            pending = self.pending_dir / name
            lease = self.leases_dir / name
            try:
                os.rename(pending, lease)
            except FileNotFoundError:
                continue  # another worker won the race
            except OSError:
                continue
            # Rename preserves the pending file's mtime, which may
            # already be TTL-stale for a job that queued a while; start
            # the heartbeat clock *now*, before decoding, so a sweeper
            # cannot reclaim the lease out from under the winner.
            try:
                os.utime(lease)
            except OSError:  # pragma: no cover - reclaimed in the gap
                continue
            claimed = self._decode_lease(lease, worker_id)
            if claimed is not None:
                self.claimed += 1
                return claimed
        return None

    def _decode_lease(self, lease: Path, worker_id: str) -> Optional[ClaimedJob]:
        """Decode a freshly won lease, poisoning undecodable envelopes."""
        try:
            envelope = json.loads(lease.read_text(encoding="utf-8"))
            if envelope.get("format") != QUEUE_FORMAT_VERSION:
                raise ValueError("foreign queue envelope format")
            fingerprint = envelope["fingerprint"]
            kind = envelope["kind"]
            if kind not in ("simulation", "shard"):
                raise ValueError(f"unknown queue job kind {kind!r}")
            job = pickle.loads(base64.b64decode(envelope["job"]))
        except Exception:
            try:
                os.replace(lease, self.poison_dir / lease.name)
            except OSError:
                pass
            return None
        # Stamp the winner's identity (observability) and refresh the
        # heartbeat; the utime right after the winning rename keeps the
        # lease fresh through this decode, so only an executing worker
        # that later stops heartbeating can lose it.
        envelope["worker"] = worker_id
        envelope["leased_at"] = time.time()
        _atomic_write_json(self.leases_dir, lease, envelope)
        return ClaimedJob(
            fingerprint=fingerprint,
            kind=kind,
            job=job,
            envelope=envelope,
            lease_path=lease,
        )

    def heartbeat(self, claimed: ClaimedJob) -> bool:
        """Refresh the lease's liveness; False when the lease was lost."""
        try:
            os.utime(claimed.lease_path)
            return True
        except OSError:
            return False

    def release(self, claimed: ClaimedJob) -> None:
        """Push a claimed-but-unfinished job back to pending."""
        try:
            os.rename(claimed.lease_path, self.pending_dir / claimed.lease_path.name)
        except OSError:
            pass

    def complete(
        self,
        claimed: ClaimedJob,
        payload: Optional[dict],
        worker_id: str = "",
        error: Optional[str] = None,
    ) -> None:
        """Publish the job's completion marker and drop the lease.

        Duplicate completions (a re-leased job finishing twice) are
        harmless: identical fingerprints produce identical payloads and
        the atomic replace makes the last writer win.
        """
        marker = {
            "format": QUEUE_FORMAT_VERSION,
            "fingerprint": claimed.fingerprint,
            "kind": claimed.kind,
            "benchmark": claimed.envelope.get("benchmark", ""),
            "technique": claimed.envelope.get("technique", ""),
            "worker": worker_id,
            "payload": payload,
        }
        if error is not None:
            marker["error"] = error
        _atomic_write_json(self.done_dir, self.done_path(claimed.fingerprint), marker)
        self.completed += 1
        try:
            os.unlink(claimed.lease_path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Shared maintenance
    # ------------------------------------------------------------------
    def requeue_expired(self, now: Optional[float] = None) -> list[str]:
        """Re-lease jobs whose worker stopped heartbeating; return them.

        A lease older than the TTL either belongs to a dead worker (its
        job must run again) or to one that already finished (drop the
        lease).  The rename back to ``pending/`` is atomic, so when many
        processes sweep concurrently each expired lease is requeued
        exactly once.
        """
        now = time.time() if now is None else now
        requeued: list[str] = []
        try:
            names = [
                name
                for name in os.listdir(self.leases_dir)
                if name.endswith(".json") and not name.startswith(".")
            ]
        except FileNotFoundError:
            return requeued
        for name in names:
            lease = self.leases_dir / name
            try:
                age = now - lease.stat().st_mtime
            except OSError:
                continue
            if age <= self.ttl:
                continue
            fingerprint = name[: -len(".json")]
            if self.done_path(fingerprint).exists():
                try:
                    os.unlink(lease)
                except OSError:
                    pass
                continue
            try:
                os.rename(lease, self.pending_dir / name)
            except OSError:
                continue  # another sweeper won
            requeued.append(fingerprint)
            self.requeued += 1
        return requeued

    def list_done(self) -> set[str]:
        """Fingerprints with a completion marker — one directory listing.

        The driver's wait loop calls this every poll tick and opens only
        the markers that newly appeared, instead of attempting one file
        read per outstanding fingerprint per tick (which multiplies into
        thousands of per-second metadata operations on the NFS-mounted
        directories this queue targets).
        """
        try:
            return {
                name[: -len(".json")]
                for name in os.listdir(self.done_dir)
                if name.endswith(".json") and not name.startswith(".")
            }
        except FileNotFoundError:
            return set()

    def youngest_lease_age(self) -> Optional[float]:
        """Age of the most recently heartbeaten lease; None when none.

        Drops towards zero whenever any worker heartbeats or claims —
        the liveness signal behind the driver's stall timeout — at the
        cost of one directory listing plus one stat per lease.
        """
        youngest: Optional[float] = None
        try:
            now = time.time()
            for name in os.listdir(self.leases_dir):
                if name.startswith(".") or not name.endswith(".json"):
                    continue
                try:
                    age = now - (self.leases_dir / name).stat().st_mtime
                except OSError:
                    continue
                youngest = age if youngest is None else min(youngest, age)
        except FileNotFoundError:
            pass
        return youngest

    def done_marker(self, fingerprint: str) -> Optional[dict]:
        """The completion marker for ``fingerprint``, or None.

        A malformed or foreign marker reads as None — the job will be
        waited on (and eventually re-leased), never crashed on.
        """
        try:
            marker = json.loads(
                self.done_path(fingerprint).read_text(encoding="utf-8")
            )
        except (FileNotFoundError, OSError, json.JSONDecodeError):
            return None
        if not isinstance(marker, dict) or marker.get("format") != QUEUE_FORMAT_VERSION:
            return None
        return marker

    def status(self) -> dict:
        """Pending/leased/done counts plus lease-age extremes.

        ``oldest_lease_age`` spots dying workers (it approaches the TTL
        as heartbeats stop); ``youngest_lease_age`` drops whenever *any*
        worker heartbeats, which the driver uses as a liveness signal
        for its stall timeout.
        """
        def _count(directory: Path) -> int:
            try:
                return sum(
                    1
                    for name in os.listdir(directory)
                    if name.endswith(".json") and not name.startswith(".")
                )
            except FileNotFoundError:
                return 0

        oldest: Optional[float] = None
        youngest: Optional[float] = None
        try:
            now = time.time()
            for name in os.listdir(self.leases_dir):
                if name.startswith(".") or not name.endswith(".json"):
                    continue
                try:
                    age = now - (self.leases_dir / name).stat().st_mtime
                except OSError:
                    continue
                oldest = age if oldest is None else max(oldest, age)
                youngest = age if youngest is None else min(youngest, age)
        except FileNotFoundError:
            pass
        return {
            "directory": str(self.root),
            "pending": _count(self.pending_dir),
            "leased": _count(self.leases_dir),
            "done": _count(self.done_dir),
            "poisoned": _count(self.poison_dir),
            "oldest_lease_age": oldest,
            "youngest_lease_age": youngest,
            "ttl": self.ttl,
        }

    def is_idle(self) -> bool:
        """True when nothing is pending and nothing is leased."""
        status = self.status()
        return status["pending"] == 0 and status["leased"] == 0


# ----------------------------------------------------------------------
# Job execution (shared by workers and the runner's assist path)
# ----------------------------------------------------------------------
def execute_queue_job(claimed: ClaimedJob) -> dict:
    """Run one claimed job and return its payload dict.

    Job-shape dispatch lives in
    :func:`repro.harness.parallel.execute_job` — the same dispatcher the
    process pool uses — so the queue path can never diverge from the
    pool path; unknown envelope kinds were already poisoned at decode.
    """
    return execute_job(claimed.job)


def process_claimed_job(
    queue: WorkQueue, claimed: ClaimedJob, worker_id: str
) -> bool:
    """Execute, publish and complete one claimed job.

    Heartbeats the lease from a background thread while the simulation
    runs (simulations take arbitrarily long; the TTL should not have
    to).  Grid-cell results are stored into the shared
    :class:`ResultCache` so later runs hit the cache without consulting
    the queue at all; the completion marker additionally carries the
    full payload so the driver is immune to cache eviction races.

    Returns True on success, False when the job raised (an error marker
    is published either way, so the driver never hangs).
    """
    stop = threading.Event()
    interval = max(0.05, queue.ttl / 4.0)

    def _beat() -> None:
        while not stop.wait(interval):
            if not queue.heartbeat(claimed):
                return  # lease reclaimed; completion stays idempotent

    beater = threading.Thread(target=_beat, daemon=True)
    beater.start()
    try:
        payload = execute_queue_job(claimed)
    except Exception:
        stop.set()
        beater.join()
        queue.complete(claimed, None, worker_id, error=traceback.format_exc())
        return False
    stop.set()
    beater.join()
    if claimed.kind == "simulation":
        ResultCache(queue.cache_dir).store(
            claimed.fingerprint,
            stats_from_dict(payload["stats"]),
            benchmark=claimed.envelope.get("benchmark", ""),
            technique=claimed.envelope.get("technique", ""),
        )
    queue.complete(claimed, payload, worker_id)
    return True


class QueueWorker:
    """The claim/execute/complete loop one worker process runs."""

    def __init__(
        self,
        queue: WorkQueue,
        worker_id: Optional[str] = None,
        poll_interval: float = 0.2,
        max_jobs: Optional[int] = None,
        drain: bool = False,
        drain_grace: float = 1.0,
    ):
        self.queue = queue
        self.worker_id = worker_id or _default_worker_id()
        self.poll_interval = poll_interval
        self.max_jobs = max_jobs
        self.drain = drain
        self.drain_grace = drain_grace
        self.jobs_done = 0
        self.jobs_failed = 0

    def run(self) -> int:
        """Serve the queue; returns the number of jobs executed."""
        queue = self.queue
        idle_since: Optional[float] = None
        while True:
            if self.max_jobs is not None and self.jobs_done >= self.max_jobs:
                break
            queue.requeue_expired()
            claimed = queue.claim(self.worker_id)
            if claimed is None:
                now = time.time()
                if self.drain and queue.is_idle():
                    if idle_since is None:
                        idle_since = now
                    elif now - idle_since >= self.drain_grace:
                        break
                else:
                    idle_since = None
                time.sleep(self.poll_interval)
                continue
            idle_since = None
            if process_claimed_job(queue, claimed, self.worker_id):
                self.jobs_done += 1
            else:
                self.jobs_failed += 1
        return self.jobs_done


# ----------------------------------------------------------------------
# Worker entry point: python -m repro.harness.queue
# ----------------------------------------------------------------------
def spawn_local_workers(
    cache_dir: str | os.PathLike,
    count: int,
    ttl: float = 60.0,
    poll_interval: float = 0.2,
    drain: bool = False,
):
    """Start ``count`` worker subprocesses against ``cache_dir``.

    Convenience for single-host scale-out and the in-tree smoke tests;
    remote hosts just run the module entry point themselves.  The
    workers inherit the environment plus a ``PYTHONPATH`` that resolves
    this package, so they work from an uninstalled source tree.
    """
    import subprocess
    import sys

    import repro

    src_root = str(Path(next(iter(repro.__path__))).parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
    command = [
        sys.executable,
        "-m",
        "repro.harness.queue",
        str(cache_dir),
        "--ttl",
        str(ttl),
        "--poll",
        str(poll_interval),
    ]
    if drain:
        command.append("--drain")
    return [subprocess.Popen(command, env=env) for _ in range(count)]


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Work-queue worker over a shared simulation cache directory"
    )
    parser.add_argument("cache_dir", help="shared cache directory (holds queue/)")
    parser.add_argument("--worker-id", default=None, help="identity stamped on leases")
    parser.add_argument(
        "--ttl", type=float, default=60.0, help="heartbeat TTL before re-lease (s)"
    )
    parser.add_argument(
        "--poll", type=float, default=0.2, help="idle polling interval (s)"
    )
    parser.add_argument(
        "--max-jobs", type=int, default=None, help="exit after N jobs (default: serve)"
    )
    parser.add_argument(
        "--drain",
        action="store_true",
        help="exit once the queue stays empty for the grace period",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=1.0,
        help="idle seconds before --drain exits",
    )
    parser.add_argument(
        "--status", action="store_true", help="print queue status as JSON and exit"
    )
    args = parser.parse_args(argv)

    queue = WorkQueue(args.cache_dir, ttl=args.ttl)
    if args.status:
        print(json.dumps(queue.status(), indent=2))
        return 0
    worker = QueueWorker(
        queue,
        worker_id=args.worker_id,
        poll_interval=args.poll,
        max_jobs=args.max_jobs,
        drain=args.drain,
        drain_grace=args.drain_grace,
    )
    done = worker.run()
    print(f"worker {worker.worker_id}: {done} job(s) executed, {worker.jobs_failed} failed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
