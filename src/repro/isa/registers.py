"""Architectural register model.

The IR uses 32 integer architectural registers plus 16 floating-point
registers, mirroring a RISC machine of the paper's era.  A handful of
registers have conventional roles (zero register, stack pointer, return
value); the workload generator respects these conventions so that generated
programs execute correctly on the functional emulator.
"""

from __future__ import annotations

from dataclasses import dataclass


#: Number of integer architectural registers.
NUM_ARCH_REGS = 32

#: Number of floating-point architectural registers.
NUM_FP_ARCH_REGS = 16

#: Register 0 always reads as zero and writes to it are discarded.
ZERO_REG = 0

#: Conventional stack pointer.
STACK_POINTER_REG = 29

#: Conventional return-value register.
RETURN_VALUE_REG = 2

#: Conventional link register used by CALL/RET.
LINK_REG = 31


@dataclass(frozen=True, order=True)
class Reg:
    """A register operand.

    Attributes:
        index: architectural register number.
        is_fp: True for a floating-point register, False for integer.
    """

    index: int
    is_fp: bool = False

    def __post_init__(self) -> None:
        limit = NUM_FP_ARCH_REGS if self.is_fp else NUM_ARCH_REGS
        if not 0 <= self.index < limit:
            raise ValueError(
                f"register index {self.index} out of range for "
                f"{'fp' if self.is_fp else 'int'} register file (0..{limit - 1})"
            )

    @property
    def name(self) -> str:
        """Human-readable register name (``r5`` or ``f3``)."""
        prefix = "f" if self.is_fp else "r"
        return f"{prefix}{self.index}"

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Reg({self.name})"


#: Names of all integer registers, for pretty-printing and tests.
REG_NAMES = tuple(f"r{i}" for i in range(NUM_ARCH_REGS))


def int_reg(index: int) -> Reg:
    """Shorthand for an integer register operand."""
    return Reg(index, is_fp=False)


def fp_reg(index: int) -> Reg:
    """Shorthand for a floating-point register operand."""
    return Reg(index, is_fp=True)
