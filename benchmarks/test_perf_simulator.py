"""Micro-benchmark: simulator hot-path throughput in cycles per second.

Records how many machine cycles the timing model simulates per wall-clock
second on the gzip baseline run, so successive PRs have a performance
trajectory for the per-cycle hot path (issue select, wakeup broadcast,
dispatch, fetch).  The measured rate lands in ``extra_info`` of the
pytest-benchmark JSON output as ``cycles_per_second``.

Reference points on the development machine (1-core container):

* pre-optimisation seed: ~17.4k cycles/s
* after the incremental ready-set + batched writeback + deque front end:
  ~24.7k cycles/s (1.42x)

The assertion below is a loose floor (well under half the seed rate) so
the bench fails only on a catastrophic hot-path regression, not on
machine noise.
"""

from __future__ import annotations

import time

from repro.techniques import BaselinePolicy
from repro.uarch import simulate
from repro.workloads import build_benchmark

MAX_INSTRUCTIONS = 12_000
MIN_CYCLES_PER_SECOND = 2_000.0


def _timed_run() -> tuple[int, float]:
    program = build_benchmark("gzip")
    start = time.perf_counter()
    stats = simulate(program, BaselinePolicy(), max_instructions=MAX_INSTRUCTIONS)
    elapsed = time.perf_counter() - start
    return stats.cycles, elapsed


def test_simulator_cycle_throughput(benchmark):
    # Warm the generator/emulator caches so the bench isolates the core.
    build_benchmark("gzip")
    simulate(build_benchmark("gzip"), BaselinePolicy(), max_instructions=1_000)

    cycles, elapsed = benchmark.pedantic(_timed_run, rounds=3, iterations=1)
    rate = cycles / elapsed
    benchmark.extra_info["cycles_simulated"] = cycles
    benchmark.extra_info["cycles_per_second"] = round(rate)
    print(f"\n  simulated {cycles} cycles at {rate:,.0f} cycles/second")
    assert cycles > 0
    assert rate > MIN_CYCLES_PER_SECOND
