"""Figure 9: integer register-file power savings for the NOOP technique."""

from figure_report import report
from repro.harness.figures import figure9


def test_figure9_regfile_power_noop(benchmark, runner):
    figure = benchmark.pedantic(figure9, args=(runner,), rounds=1, iterations=1)
    report(
        "Figure 9 - register-file power savings, NOOP (paper: 22% dyn / 21% static; "
        "abella 14%/17%)",
        figure,
    )
    dynamic = figure.series["dynamic"]
    static = figure.series["static"]
    # Limiting the queue keeps fewer instructions in flight, so fewer
    # physical registers are live and bank gating saves power.
    assert dynamic["SPECINT"] > 0.0
    assert static["SPECINT"] > 0.0
