"""Simulation front door over the pluggable replay-engine architecture.

The per-cycle timing loop lives behind the
:class:`~repro.uarch.engine.base.ReplayEngine` interface in
:mod:`repro.uarch.engine`: the scalar reference kernel
(:class:`~repro.uarch.engine.scalar.OutOfOrderCore`, re-exported here so
existing imports keep working) and the columnar numpy kernel
(:class:`~repro.uarch.engine.columnar.ColumnarCore`).  This module wires
a kernel together with the trace tiers of :mod:`repro.uarch.trace` and a
resizing policy:

* :func:`simulate` — emulate ``program`` once (memo/disk tiers apply)
  and replay it to the end of its budget;
* :func:`simulate_span` — replay one entry span of a trace, freezing
  statistics at the commit of the N-th measured instruction (the
  window-shard entry point of :mod:`repro.harness.shard`).

Both take ``engine=`` (``"scalar"`` | ``"columnar"``; default: the
``REPRO_REPLAY_KERNEL`` environment variable, else scalar).  Engine
statistics are bit-identical, so the choice is transport — like the
trace window size or the worker count — and never affects results or
cache fingerprints.
"""

from __future__ import annotations

from typing import Optional

from repro.uarch.config import ProcessorConfig
from repro.uarch.engine import OutOfOrderCore, get_engine
from repro.uarch.stats import SimulationStats
from repro.uarch.trace import TraceCache, get_trace_span_stream, get_trace_stream

__all__ = ["OutOfOrderCore", "simulate", "simulate_span"]


def simulate(
    program,
    policy=None,
    config: Optional[ProcessorConfig] = None,
    max_instructions: int = 20_000,
    warmup_instructions: int = 0,
    max_cycles: Optional[int] = None,
    trace_cache=None,
    live_emulation: Optional[bool] = None,
    trace_window: Optional[int] = None,
    engine: Optional[str] = None,
) -> SimulationStats:
    """Convenience wrapper: emulate ``program`` once and replay it under
    ``policy``.

    The functional emulation is decoupled from the timing loop: the
    committed stream is pre-decoded into flat arrays by
    :func:`repro.uarch.trace.get_trace_stream` (memoised per process and
    optionally cached on disk), and the selected replay engine replays
    those arrays.  Budgets above the trace window stream window by
    window, bounding peak decoded-trace memory by the window size;
    statistics are bit-identical for every window size and every engine.

    Args:
        program: an IR :class:`~repro.isa.program.Program`.
        policy: a resizing policy from :mod:`repro.techniques`
            (baseline full-size queue when omitted).
        config: processor configuration (table 1 when omitted).
        max_instructions: dynamic instruction budget for the emulator.
        warmup_instructions: committed instructions to run before statistics
            start accumulating (cache/predictor warm-up).
        max_cycles: optional safety cap on simulated cycles.
        trace_cache: optional on-disk trace cache — a
            :class:`~repro.uarch.trace.TraceCache` or a directory path.
        live_emulation: force a fresh functional emulation, bypassing the
            trace memo and the disk cache (default: the
            ``REPRO_LIVE_EMULATION`` environment variable).
        trace_window: decoded-trace window size in instructions (None:
            ``REPRO_TRACE_WINDOW`` or the library default; 0 forces a
            monolithic decode).
        engine: replay kernel name (None: ``REPRO_REPLAY_KERNEL`` or
            ``"scalar"``).

    Returns:
        The populated :class:`~repro.uarch.stats.SimulationStats`.
    """
    if trace_cache is not None and not isinstance(trace_cache, TraceCache):
        trace_cache = TraceCache(trace_cache)
    stream = get_trace_stream(
        program,
        max_instructions,
        window_size=trace_window,
        cache=trace_cache,
        live=live_emulation,
    )
    return get_engine(engine).run(
        stream,
        policy,
        config=config,
        warmup_instructions=warmup_instructions,
        max_cycles=max_cycles,
    )


def simulate_span(
    program,
    policy=None,
    config: Optional[ProcessorConfig] = None,
    *,
    max_instructions: int,
    first_entry: int = 0,
    last_entry: Optional[int] = None,
    warmup_commits: int = 0,
    measure_commits: Optional[int] = None,
    trace_cache=None,
    trace_window: Optional[int] = None,
    max_cycles: Optional[int] = None,
    live_emulation: Optional[bool] = None,
    engine: Optional[str] = None,
) -> SimulationStats:
    """Replay one entry span of a trace, measuring part of it.

    The measure-span entry point behind window sharding
    (:mod:`repro.harness.shard`).  The selected engine replays the
    dynamic trace entries ``[first_entry, last_entry)`` of the (program,
    ``max_instructions``) trace; the first ``warmup_commits`` committed
    instructions are warm-up (statistics reset when they retire, exactly
    like ``simulate``'s ``warmup_instructions``), and with
    ``measure_commits`` set, statistics freeze at the commit of the
    N-th measured instruction while younger entries of the span — the
    shard's *slack* — are still in flight keeping the pipeline fed, so
    the boundary cycle is timed exactly as in an unsharded run.

    A sharded run stitches per-span statistics with
    :func:`repro.uarch.stats.merge_stats`; when every shard warms up
    over the full preceding trace, the stitched statistics are
    bit-identical to one sequential replay — under either engine.
    """
    if trace_cache is not None and not isinstance(trace_cache, TraceCache):
        trace_cache = TraceCache(trace_cache)
    stream = get_trace_span_stream(
        program,
        max_instructions,
        first_entry,
        last_entry,
        window_size=trace_window,
        cache=trace_cache,
        live=live_emulation,
    )
    return get_engine(engine).run_span(
        stream,
        policy,
        config=config,
        warmup_commits=warmup_commits,
        measure_commits=measure_commits,
        max_cycles=max_cycles,
    )
