"""``python -m repro.analysis`` — run reprolint from the command line."""

from repro.analysis.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
