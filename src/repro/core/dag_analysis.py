"""Per-basic-block DAG analysis (section 4.2).

The paper analyses each basic block of a DAG region individually, using the
pseudo issue queue to determine how many IQ entries the block needs, and
"conservatively summarises the control flow paths leading to each block"
rather than analysing every path separately.  The summary threaded between
blocks here is a per-register availability delay: how many cycles after the
block starts executing a value produced by a predecessor becomes available.
Multiple predecessors are merged according to the configured policy
(conservative maximum by default); blocks with very many predecessors fall
back to the all-available assumption, reproducing the loss of accuracy the
paper reports for gcc's complex control flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cfg.dag_regions import DagRegion
from repro.cfg.graph import ControlFlowGraph
from repro.core.config import CompilerConfig
from repro.core.pseudo_queue import PseudoIssueQueue, ScheduleResult
from repro.isa.program import BasicBlock
from repro.isa.registers import Reg


@dataclass
class BlockRequirement:
    """The analysis result for one basic block.

    Attributes:
        procedure: enclosing procedure name.
        label: basic-block label.
        entries: issue-queue entries the block needs (clamped to the
            physical queue size and the configured floor).
        raw_entries: the unclamped requirement from the scheduler.
        schedule: the full pseudo-issue-queue schedule (for diagnostics).
        source: ``"dag"`` or ``"loop"`` depending on which analysis produced
            the value; loop headers carry the loop requirement.
    """

    procedure: str
    label: str
    entries: int
    raw_entries: int
    schedule: Optional[ScheduleResult] = None
    source: str = "dag"


@dataclass
class PathSummary:
    """Conservative summary of register availability at a block boundary."""

    latency: dict[Reg, int] = field(default_factory=dict)

    def merged_with(self, other: "PathSummary", policy: str) -> "PathSummary":
        """Merge two predecessor summaries under ``policy`` ("max" or "ready")."""
        if policy == "ready":
            return PathSummary()
        merged: dict[Reg, int] = dict(self.latency)
        for reg, value in other.latency.items():
            merged[reg] = max(merged.get(reg, 0), value)
        return PathSummary(latency=merged)

    @classmethod
    def ready(cls) -> "PathSummary":
        """Summary in which every value is already available."""
        return cls()


def analyse_block(
    block: BasicBlock,
    config: CompilerConfig,
    procedure_name: str = "",
    entry_summary: Optional[PathSummary] = None,
) -> BlockRequirement:
    """Run the pseudo-issue-queue analysis on a single basic block."""
    scheduler = PseudoIssueQueue(config)
    summary = entry_summary or PathSummary.ready()
    schedule = scheduler.schedule(
        block.non_hint_instructions(), entry_latency=summary.latency
    )
    raw = schedule.entries_needed
    return BlockRequirement(
        procedure=procedure_name,
        label=block.label,
        entries=config.clamp_requirement(raw),
        raw_entries=raw,
        schedule=schedule,
        source="dag",
    )


def analyse_dag_region(
    cfg: ControlFlowGraph,
    region: DagRegion,
    config: CompilerConfig,
) -> dict[str, BlockRequirement]:
    """Analyse every block of a DAG region, breadth-first from its start.

    Returns a mapping from block label to its requirement.  The traversal
    order matches figure 5 of the paper ("Traverse the DAG breadth-first");
    each block's entry summary is the merge of its predecessors' exit
    summaries restricted to predecessors inside the same region (values from
    outside the region are assumed available, as the paper assumes for the
    first block of a procedure).
    """
    scheduler = PseudoIssueQueue(config)
    requirements: dict[str, BlockRequirement] = {}
    exit_summaries: dict[str, PathSummary] = {}
    region_blocks = set(region.blocks)
    procedure_name = cfg.procedure.name

    for label in region.blocks:
        block = cfg.block(label)
        preds_in_region = [p for p in cfg.pred(label) if p in region_blocks and p in exit_summaries]

        if len(cfg.pred(label)) > config.max_merge_preds:
            # Complex control flow: fall back to the all-available summary
            # (the gcc pathology described in section 5.3).
            entry_summary = PathSummary.ready()
        else:
            entry_summary = PathSummary.ready()
            for pred in preds_in_region:
                entry_summary = entry_summary.merged_with(
                    exit_summaries[pred], config.merge_policy
                )

        schedule = scheduler.schedule(
            block.non_hint_instructions(), entry_latency=entry_summary.latency
        )
        raw = schedule.entries_needed
        requirements[label] = BlockRequirement(
            procedure=procedure_name,
            label=label,
            entries=config.clamp_requirement(raw),
            raw_entries=raw,
            schedule=schedule,
            source="dag",
        )
        exit_summaries[label] = PathSummary(latency=dict(schedule.exit_latency))

    return requirements
