"""Daemon entry point: ``python -m repro.service <cache_dir>``."""

from __future__ import annotations

import argparse
import json
from typing import Optional

from repro.harness import faults
from repro.service.daemon import ExperimentService
from repro.telemetry import spans as tracing


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Experiment service daemon over a shared cache directory",
    )
    parser.add_argument("cache_dir", help="shared cache directory (holds queue/)")
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7341, help="bind port (0 for ephemeral)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="local worker subprocesses to spawn for execution (external "
        "hosts join by running python -m repro.harness.queue <cache_dir>)",
    )
    parser.add_argument(
        "--ttl", type=float, default=60.0, help="lease heartbeat TTL (s)"
    )
    parser.add_argument(
        "--assist",
        action="store_true",
        help="let the service loop itself claim and execute queued jobs "
        "between ticks (blocks the loop per job; for single-process use)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="global admission bound on unique in-flight fingerprints",
    )
    parser.add_argument(
        "--max-inflight-per-client",
        type=int,
        default=16,
        help="admission bound on one client's unresolved cell charges",
    )
    args = parser.parse_args(argv)

    # A chaos soak exports REPRO_FAULT_PLAN; the daemon self-installs so
    # its queue/cache touchpoints share the fleet's fault schedule.
    faults.install_from_env()
    # Likewise REPRO_TELEMETRY: a traced daemon publishes its enqueue
    # spans (per-request trace ids) into the shared cache directory.
    tracing.install_from_env(args.cache_dir)
    service = ExperimentService(
        args.cache_dir,
        host=args.host,
        port=args.port,
        queue_ttl=args.ttl,
        assist=args.assist,
        max_inflight=args.max_inflight,
        max_inflight_per_client=args.max_inflight_per_client,
    )
    address = service.open()
    print(json.dumps({"listening": list(address)}), flush=True)
    procs = []
    if args.workers:
        from repro.harness.queue import spawn_local_workers

        procs = spawn_local_workers(args.cache_dir, args.workers, ttl=args.ttl)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        service.stop()
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except Exception:  # repro: allow[exception-hygiene] best-effort teardown
                proc.kill()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
