"""The replay-engine contract and registry.

A **replay engine** is one implementation of the per-cycle timing loop:
it consumes a pre-decoded trace window stream
(:class:`~repro.uarch.trace.TraceWindowStream`) under a resizing policy
and produces :class:`~repro.uarch.stats.SimulationStats`.  The contract
deliberately separates *what* a cycle does (the machine semantics, fixed
by the paper's table 1 and section 3) from *how* a kernel executes it, so
the execution harness — the process pool, the distributed work queue, the
window-shard stitcher — can fan work out to whichever kernel is fastest
on each host without any caller noticing.

Two invariants every engine must uphold:

* **Bit-identity** — statistics are a pure function of (trace, policy,
  config, warm-up, budget).  Engines are alternative executions of the
  same machine, never alternative machines: the equivalence suite
  (``tests/test_engines.py``) asserts byte-identical counters between
  kernels for every technique at every window size, including 1.
* **Fingerprint neutrality** — because outputs are bit-identical, the
  engine name must never participate in result-cache fingerprints
  (:func:`repro.harness.cache.simulation_fingerprint`).  An engine is
  transport, like the trace window size or the worker count.

Selection: :func:`get_engine` resolves an explicit name, else the
``REPRO_REPLAY_KERNEL`` environment variable, else ``"scalar"``.
"""

from __future__ import annotations

import abc
import os
from typing import Optional

from repro.uarch.stats import SimulationStats

#: Environment variable supplying the default kernel name.
ENGINE_ENV_VAR = "REPRO_REPLAY_KERNEL"

#: The kernel used when neither an argument nor the environment chooses.
DEFAULT_ENGINE = "scalar"


class EngineUnavailableError(RuntimeError):
    """A registered kernel was selected but cannot run on this host.

    Every optional kernel raises its own named subclass
    (``ColumnarUnavailableError`` when numpy is missing,
    ``NativeUnavailableError`` when the C toolchain is) so callsites can
    be specific, while fleet plumbing that degrades gracefully — the
    telemetry probes, the worker calibration pass — catches this base
    class once instead of enumerating kernels.
    """


class ReplayEngine(abc.ABC):
    """One execution kernel for the per-cycle replay loop.

    Subclasses implement :meth:`build_core` — everything else (the plain
    run, the freeze-at-commit measure span the shard stitcher needs) is
    defined once here in terms of it, so the two entry points can never
    disagree about how a kernel is constructed.
    """

    #: Registry key and the name reported by tools (``--engine`` values).
    name: str = "abstract"

    def unavailable_reason(self) -> Optional[str]:
        """Why this kernel cannot run on this host, or ``None`` if it can.

        Registration is unconditional (the registry answers "what kernels
        exist", not "what runs here"); optional kernels override this so
        callers — the pytest ``--engine`` plumbing, the telemetry probes —
        can skip or degrade *before* :meth:`build_core` raises the
        kernel's named ``*UnavailableError``.
        """
        return None

    @abc.abstractmethod
    def build_core(
        self,
        trace,
        *,
        config=None,
        policy=None,
        warmup_instructions: int = 0,
        max_cycles: Optional[int] = None,
        measure_instructions: Optional[int] = None,
    ):
        """Construct this kernel's core over ``trace`` (a window stream,
        a :class:`~repro.uarch.trace.DecodedTrace`, or a dynamic-
        instruction iterable — whatever the scalar core accepts)."""

    def run(
        self,
        trace,
        policy=None,
        *,
        config=None,
        warmup_instructions: int = 0,
        max_cycles: Optional[int] = None,
    ) -> SimulationStats:
        """Replay ``trace`` to its end and return the run's statistics."""
        core = self.build_core(
            trace,
            config=config,
            policy=policy,
            warmup_instructions=warmup_instructions,
            max_cycles=max_cycles,
        )
        return core.run()

    def run_span(
        self,
        trace,
        policy=None,
        *,
        config=None,
        warmup_commits: int = 0,
        measure_commits: Optional[int] = None,
        max_cycles: Optional[int] = None,
    ) -> SimulationStats:
        """Replay a measure span, freezing statistics at the commit of the
        N-th measured instruction (the window-shard stitcher's entry)."""
        core = self.build_core(
            trace,
            config=config,
            policy=policy,
            warmup_instructions=warmup_commits,
            max_cycles=max_cycles,
            measure_instructions=measure_commits,
        )
        return core.run()


_ENGINE_CLASSES: dict[str, type] = {}
_ENGINE_INSTANCES: dict[str, ReplayEngine] = {}


def register_engine(cls: type) -> type:
    """Class decorator adding a :class:`ReplayEngine` to the registry."""
    _ENGINE_CLASSES[cls.name] = cls
    return cls


def available_engines() -> tuple[str, ...]:
    """Registered kernel names, in registration order."""
    return tuple(_ENGINE_CLASSES)


def resolve_engine_name(name: Optional[str] = None) -> str:
    """The effective kernel name: argument, else env, else the default.

    Raises ``ValueError`` for a name that is not registered, naming the
    choices — a typo in ``REPRO_REPLAY_KERNEL`` should fail loudly at
    selection time, not deep inside a worker.
    """
    if name is None:
        name = os.environ.get(ENGINE_ENV_VAR) or DEFAULT_ENGINE
    if name not in _ENGINE_CLASSES:
        raise ValueError(
            f"unknown replay engine {name!r}; available: "
            + ", ".join(available_engines())
        )
    return name


def get_engine(name: Optional[str] = None) -> ReplayEngine:
    """The engine instance for ``name`` (engines are stateless, shared)."""
    name = resolve_engine_name(name)
    engine = _ENGINE_INSTANCES.get(name)
    if engine is None:
        engine = _ENGINE_INSTANCES[name] = _ENGINE_CLASSES[name]()
    return engine
