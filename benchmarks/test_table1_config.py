"""Table 1: the processor configuration used throughout the evaluation."""

from repro.harness.tables import table1
from repro.uarch import ProcessorConfig


def test_table1_config(benchmark):
    text = benchmark.pedantic(table1, rounds=1, iterations=1)
    print("\n" + text)
    config = ProcessorConfig.hpca2005()
    assert config.iq_entries == 80 and config.rob_entries == 128
    assert "80 entries" in text
