"""The shipped reprolint rules — one per repo contract.

Each rule encodes one invariant the reproduction's correctness rests on
(see ``docs/static-analysis.md`` for the catalogue and ROADMAP.md for
the contracts themselves).  Rules are scoped by path where the contract
is scoped by layer: determinism binds the replay core under
``repro/uarch/``, the atomic-IO discipline binds the modules that write
the shared cache tree, the transition table binds the queue module, and
the rest bind the whole package.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.analysis.core import Finding, Rule, register_rule


def _walk_functions(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _call_name(func: ast.AST) -> str:
    """The trailing identifier of a call target (``os.rename`` → ``rename``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _string_constant(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


# ----------------------------------------------------------------------
# 1. determinism — the replay core must be bit-identical run to run
# ----------------------------------------------------------------------
@register_rule
class DeterminismRule(Rule):
    """No nondeterminism sources inside ``repro/uarch/``.

    The acceptance gate of ``tests/test_engines.py`` is *byte-identical*
    statistics between replay kernels at every window size; one
    ``time.time()`` sample, ``random`` draw or iteration over an
    unordered set anywhere in the replay core silently voids it.  The
    rule bans importing ``random``/``time``/``datetime`` in the uarch
    layer outright and flags ``for``/comprehension iteration whose
    iterable is syntactically a set (literal, comprehension, or a
    direct ``set()``/``frozenset()`` call) — wrap such iterables in
    ``sorted(...)`` to pin the order.
    """

    rule_id = "determinism"
    contract = (
        "repro/uarch/ must stay bit-deterministic: no random/time/datetime "
        "imports, no iteration over unordered sets"
    )

    BANNED_MODULES = ("random", "time", "datetime")

    def applies_to(self, posix_path: str) -> bool:
        return "repro/uarch/" in posix_path

    def check(self, tree: ast.AST, path: str) -> Iterable[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self.BANNED_MODULES:
                        yield self.finding(
                            node,
                            path,
                            f"import of nondeterminism source {root!r} in the "
                            "replay core; uarch code must be bit-identical "
                            "run to run",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in self.BANNED_MODULES:
                    yield self.finding(
                        node,
                        path,
                        f"import from nondeterminism source {root!r} in the "
                        "replay core; uarch code must be bit-identical "
                        "run to run",
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expression(node.iter):
                    yield self.finding(
                        node.iter,
                        path,
                        "iteration over an unordered set in the replay core; "
                        "wrap the iterable in sorted(...) to pin the order",
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if self._is_set_expression(generator.iter):
                        yield self.finding(
                            generator.iter,
                            path,
                            "comprehension over an unordered set in the replay "
                            "core; wrap the iterable in sorted(...) to pin "
                            "the order",
                        )

    @staticmethod
    def _is_set_expression(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False


# ----------------------------------------------------------------------
# 2. atomic-io — shared-tree writers must go through repro.atomicio
# ----------------------------------------------------------------------
@register_rule
class AtomicIoRule(Rule):
    """Cache/queue-tree modules must publish files via ``repro.atomicio``.

    The gc sweeper identifies killed-writer debris purely by the
    ``.tmp-*`` prefix plus age, and readers rely on never observing a
    torn file; both guarantees hold only while every writer uses
    ``publish_atomically`` (temp file + ``os.replace`` in the
    destination directory).  The modules that operate on the shared
    cache directory therefore may not open files for writing, call
    ``Path.write_text``/``write_bytes``, or ``json.dump`` into an
    inline ``open()`` — only :mod:`repro.atomicio` itself owns the raw
    file-writing machinery.
    """

    rule_id = "atomic-io"
    contract = (
        "modules writing the shared cache/queue tree must publish through "
        "repro.atomicio (temp file + os.replace), never raw write-mode IO"
    )

    #: The modules that write into the shared cache directory.  New
    #: writers of that tree must be added here to come under the rule.
    SCOPED_MODULES = (
        "repro/harness/cache.py",
        "repro/harness/queue.py",
        "repro/harness/parallel.py",
        "repro/harness/shard.py",
        "repro/harness/completion.py",
        "repro/service/daemon.py",
        "repro/uarch/trace.py",
        "repro/telemetry/spans.py",
    )

    WRITE_MODE_CHARS = set("wax+")

    def applies_to(self, posix_path: str) -> bool:
        return any(posix_path.endswith(suffix) for suffix in self.SCOPED_MODULES)

    def check(self, tree: ast.AST, path: str) -> Iterable[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node.func)
            if name == "open" and self._open_mode_writes(node):
                yield self.finding(
                    node,
                    path,
                    "write-mode open() in a shared-cache-tree module; "
                    "publish through repro.atomicio.publish_atomically so "
                    "readers never see a torn file and gc can sweep orphans",
                )
            elif name in ("write_text", "write_bytes") and isinstance(
                node.func, ast.Attribute
            ):
                yield self.finding(
                    node,
                    path,
                    f"Path.{name}() in a shared-cache-tree module; publish "
                    "through repro.atomicio.publish_atomically instead",
                )
            elif name == "dump" and any(
                isinstance(arg, ast.Call) and _call_name(arg.func) == "open"
                for arg in node.args
            ):
                yield self.finding(
                    node,
                    path,
                    "json.dump into an inline open() in a shared-cache-tree "
                    "module; publish through "
                    "repro.atomicio.publish_atomically instead",
                )

    def _open_mode_writes(self, call: ast.Call) -> bool:
        mode = None
        if len(call.args) >= 2:
            mode = _string_constant(call.args[1])
        for keyword in call.keywords:
            if keyword.arg == "mode":
                mode = _string_constant(keyword.value)
        if mode is None:
            # No literal mode: either default "r" (positional absent) or a
            # dynamic expression we cannot prove read-only — flag the
            # latter so a computed write mode cannot slip through.
            return len(call.args) >= 2 or any(
                keyword.arg == "mode" for keyword in call.keywords
            )
        return bool(self.WRITE_MODE_CHARS & set(mode))


# ----------------------------------------------------------------------
# 3. queue-transitions — only documented state edges in the work queue
# ----------------------------------------------------------------------
@register_rule
class QueueTransitionRule(Rule):
    """``os.rename``/``os.replace`` in queue.py must match the protocol table.

    The queue's crash-safety argument (ROADMAP.md, "Queue file
    protocol") enumerates exactly three atomic-rename edges between
    protocol directories — claim (pending→leases), requeue/release
    (leases→pending) and poison (leases→poison); completion markers and
    enqueued envelopes are *published* (``repro.atomicio``), never
    renamed between states.  Any rename call site whose endpoints
    classify to a different edge — or that this rule cannot classify at
    all — is an undocumented state transition and fails the build until
    the protocol table (and its crash-recovery reasoning) is updated.
    """

    rule_id = "queue-transitions"
    contract = (
        "os.rename/os.replace in repro/harness/queue.py may only realise the "
        "documented protocol edges: pending→leases, leases→pending, "
        "leases→poison"
    )

    ALLOWED = frozenset(
        {("pending", "leases"), ("leases", "pending"), ("leases", "poison")}
    )

    #: Substring → protocol state.  Matching is on the *leftmost* path
    #: operand (the directory), so ``self.pending_dir /
    #: claimed.lease_path.name`` classifies as pending.
    STATE_TOKENS = (
        ("pending", "pending"),
        ("lease", "leases"),
        ("poison", "poison"),
        ("done", "done"),
        ("worker", "workers"),
        ("tmp", "tmp"),
    )

    def applies_to(self, posix_path: str) -> bool:
        return posix_path.endswith("repro/harness/queue.py")

    def check(self, tree: ast.AST, path: str) -> Iterable[Finding]:
        for function in _walk_functions(tree):
            assignments = self._local_assignments(function)
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                if _call_name(node.func) not in ("rename", "replace"):
                    continue
                if len(node.args) < 2:
                    continue
                source = self._classify(node.args[0], assignments)
                dest = self._classify(node.args[1], assignments)
                if source is None or dest is None:
                    yield self.finding(
                        node,
                        path,
                        "rename endpoints cannot be classified against the "
                        "queue protocol directories; name the operands after "
                        "their protocol state (pending/leases/done/poison) "
                        "or document the new edge",
                    )
                elif (source, dest) not in self.ALLOWED:
                    allowed = ", ".join(
                        f"{a}→{b}" for a, b in sorted(self.ALLOWED)
                    )
                    yield self.finding(
                        node,
                        path,
                        f"undocumented queue state transition "
                        f"{source}→{dest}; the protocol table allows "
                        f"only {allowed}",
                    )

    def _local_assignments(self, function: ast.AST) -> dict[str, ast.AST]:
        """Single-target ``name = expr`` assignments in ``function``."""
        assignments: dict[str, ast.AST] = {}
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    assignments[target.id] = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    assignments[node.target.id] = node.value
        return assignments

    def _classify(
        self,
        node: ast.AST,
        assignments: dict[str, ast.AST],
        depth: int = 0,
    ) -> Optional[str]:
        if depth > 8:
            return None
        if isinstance(node, ast.BinOp):
            # ``dir / name`` path joins: the directory (the protocol
            # state) is the leftmost operand.
            return self._classify(node.left, assignments, depth + 1)
        if isinstance(node, ast.Name):
            if node.id in assignments:
                state = self._classify(assignments[node.id], assignments, depth + 1)
                if state is not None:
                    return state
            return self._token_state(node.id)
        if isinstance(node, ast.Attribute):
            state = self._token_state(node.attr)
            if state is not None:
                return state
            return self._classify(node.value, assignments, depth + 1)
        if isinstance(node, ast.Call):
            # ``self.pending_path(f)``-style helpers: classify the callee.
            return self._classify(node.func, assignments, depth + 1)
        return None

    def _token_state(self, name: str) -> Optional[str]:
        lowered = name.lower()
        states = {state for token, state in self.STATE_TOKENS if token in lowered}
        return next(iter(states)) if len(states) == 1 else None


# ----------------------------------------------------------------------
# 4. fingerprint-purity — engine identity never enters cache keys
# ----------------------------------------------------------------------
@register_rule
class FingerprintPurityRule(Rule):
    """Replay-kernel identity must not flow into fingerprint construction.

    Replay engines are bit-identical by contract, so the engine is
    *transport*, like the worker count: a grid cached under the scalar
    kernel must be a pure hit under the columnar one.  One ``"engine"``
    key in a fingerprint payload silently doubles every cache.  The
    rule inspects every function whose name contains ``fingerprint``
    and flags any identifier, parameter, keyword or dict key matching
    the engine vocabulary (``engine``/``kernel``/``REPRO_REPLAY``);
    it also flags ``engine=``-style keywords passed *to* a fingerprint
    function from anywhere.
    """

    rule_id = "fingerprint-purity"
    contract = (
        "engine/kernel identifiers never flow into ResultCache/TraceCache "
        "fingerprint construction (engines are bit-identical transport)"
    )

    IMPURE_TOKENS = ("engine", "kernel", "repro_replay")

    def check(self, tree: ast.AST, path: str) -> Iterable[Finding]:
        fingerprint_functions = [
            node
            for node in _walk_functions(tree)
            if "fingerprint" in node.name.lower()
        ]
        for function in fingerprint_functions:
            yield from self._check_function(function, path)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if "fingerprint" not in _call_name(node.func).lower():
                continue
            for keyword in node.keywords:
                if keyword.arg and self._impure(keyword.arg):
                    yield self.finding(
                        keyword.value,
                        path,
                        f"keyword {keyword.arg!r} passes engine identity into "
                        "a fingerprint function; engines are bit-identical "
                        "transport and must not enter cache keys",
                    )

    def _check_function(self, function: ast.AST, path: str) -> Iterator[Finding]:
        for arg in ast.walk(function):
            if isinstance(arg, ast.arg) and self._impure(arg.arg):
                yield self.finding(
                    arg,
                    path,
                    f"fingerprint function {function.name!r} takes engine "
                    f"identity parameter {arg.arg!r}; engines must not enter "
                    "cache keys",
                )
        body = function.body
        if (
            body
            and isinstance(body[0], ast.Expr)
            and _string_constant(body[0].value) is not None
        ):
            body = body[1:]  # prose may mention the contract by name
        for statement in body:
            for node in ast.walk(statement):
                label: Optional[str] = None
                if isinstance(node, ast.Name) and self._impure(node.id):
                    label = node.id
                elif isinstance(node, ast.Attribute) and self._impure(node.attr):
                    label = node.attr
                elif isinstance(node, ast.keyword) and node.arg and self._impure(node.arg):
                    label = node.arg
                elif isinstance(node, ast.Dict):
                    for key in node.keys:
                        text = _string_constant(key)
                        if text is not None and self._impure(text):
                            yield self.finding(
                                key,
                                path,
                                f"dict key {text!r} inside fingerprint "
                                f"function {function.name!r} injects engine "
                                "identity into the cache key",
                            )
                    continue
                if label is not None:
                    yield self.finding(
                        node,
                        path,
                        f"engine identifier {label!r} referenced inside "
                        f"fingerprint function {function.name!r}; engines "
                        "are bit-identical transport and must not enter "
                        "cache keys",
                    )

    def _impure(self, name: str) -> bool:
        lowered = name.lower()
        return any(token in lowered for token in self.IMPURE_TOKENS)


# ----------------------------------------------------------------------
# 5. exception-hygiene — broad handlers need a re-raise or a pragma
# ----------------------------------------------------------------------
@register_rule
class ExceptionHygieneRule(Rule):
    """``except Exception``/``except:`` must re-raise or carry a pragma.

    A broad handler that swallows is where torn queue protocol state,
    half-folded cache counters and silently wrong figures go to hide.
    Handlers that re-raise (``repro.atomicio``'s cleanup-then-``raise``)
    are fine; genuinely unbounded exception surfaces (unpickling foreign
    envelopes, executing user job code) stay broad with a justified
    ``# repro: allow[exception-hygiene] <reason>`` pragma on the
    ``except`` line; everything else narrows to the exception types the
    body actually expects.
    """

    rule_id = "exception-hygiene"
    contract = (
        "broad except Exception/bare except must re-raise or carry a "
        "justified # repro: allow[exception-hygiene] pragma"
    )

    BROAD_NAMES = ("Exception", "BaseException")

    def check(self, tree: ast.AST, path: str) -> Iterable[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if any(isinstance(inner, ast.Raise) for inner in ast.walk(node)):
                continue
            caught = "bare except" if node.type is None else ast.unparse(node.type)
            yield self.finding(
                node,
                path,
                f"broad handler ({caught}) neither re-raises nor carries a "
                "justification pragma; narrow it to the exceptions the body "
                "expects or annotate why it must stay broad",
            )

    def _is_broad(self, node: Optional[ast.AST]) -> bool:
        if node is None:
            return True
        if isinstance(node, ast.Name):
            return node.id in self.BROAD_NAMES
        if isinstance(node, ast.Attribute):
            return node.attr in self.BROAD_NAMES
        if isinstance(node, ast.Tuple):
            return any(self._is_broad(element) for element in node.elts)
        return False


# ----------------------------------------------------------------------
# 6. optional-deps — numpy stays an extra, the scalar path stdlib-only
# ----------------------------------------------------------------------
@register_rule
class OptionalDependencyRule(Rule):
    """Each optional dependency stays inside its kernel's home module.

    The scalar engine — and with it the whole tier-1 suite — must run on
    a bare Python toolchain; every accelerated kernel's dependency is a
    setup.py extra with exactly one home: numpy belongs to the columnar
    kernel (``engine/columnar.py``), and the compiled backend's
    artefacts (the built ``_native_replay`` module, or a numba/Cython
    toolchain should a second backend adopt one) belong to
    ``engine/native.py`` plus its ``engine/build.py`` compiler harness.
    A top-level unguarded import anywhere else turns a missing extra
    into an ``ImportError`` at callsite depth instead of the deliberate
    named ``*UnavailableError``.  Imports are fine inside the module's
    listed home(s), inside a function body (deferred), or inside
    ``try``/``except ImportError`` (guarded).
    """

    rule_id = "optional-deps"
    contract = (
        "optional dependencies only in their kernel's home module (numpy → "
        "engine/columnar.py; compiled-backend artefacts → engine/native.py "
        "+ engine/build.py) or behind a guarded/deferred import; the "
        "scalar path is stdlib-only"
    )

    #: Optional import root → the module suffixes allowed to import it
    #: at top level, unguarded.  A new optional backend adds one entry.
    SCOPED_IMPORTS: dict[str, tuple[str, ...]] = {
        "numpy": ("repro/uarch/engine/columnar.py",),
        "_native_replay": (
            "repro/uarch/engine/native.py",
            "repro/uarch/engine/build.py",
        ),
        "numba": (
            "repro/uarch/engine/native.py",
            "repro/uarch/engine/build.py",
        ),
        "Cython": (
            "repro/uarch/engine/native.py",
            "repro/uarch/engine/build.py",
        ),
        "cython": (
            "repro/uarch/engine/native.py",
            "repro/uarch/engine/build.py",
        ),
        "pyximport": (
            "repro/uarch/engine/native.py",
            "repro/uarch/engine/build.py",
        ),
    }
    GUARD_EXCEPTIONS = ("ImportError", "ModuleNotFoundError", "Exception")

    def check(self, tree: ast.AST, path: str) -> Iterable[Finding]:
        yield from self._visit(tree, path, guarded=False)

    def _visit(self, node: ast.AST, path: str, guarded: bool) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_guarded = guarded
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_guarded = True
            elif isinstance(child, ast.Try) and self._guards_import_error(child):
                child_guarded = True
            if isinstance(child, (ast.Import, ast.ImportFrom)) and not guarded:
                for module in self._imported_roots(child):
                    homes = self.SCOPED_IMPORTS.get(module)
                    if homes is None:
                        continue
                    if any(path.endswith(home) for home in homes):
                        continue
                    allowed = " or ".join(homes)
                    yield self.finding(
                        child,
                        path,
                        f"unguarded import of optional dependency "
                        f"{module!r}; only {allowed} may import it "
                        "directly — elsewhere guard with try/except "
                        "ImportError or defer into a function",
                    )
            yield from self._visit(child, path, child_guarded)

    def _imported_roots(self, node: ast.AST) -> list[str]:
        if isinstance(node, ast.Import):
            return [alias.name.split(".")[0] for alias in node.names]
        if isinstance(node, ast.ImportFrom):
            return [(node.module or "").split(".")[0]]
        return []

    def _guards_import_error(self, node: ast.Try) -> bool:
        for handler in node.handlers:
            names = (
                handler.type.elts
                if isinstance(handler.type, ast.Tuple)
                else [handler.type]
            )
            for name in names:
                if name is None:
                    return True
                if isinstance(name, ast.Name) and name.id in self.GUARD_EXCEPTIONS:
                    return True
        return False


# ----------------------------------------------------------------------
# 7. retry-discipline — waiting is centralised, injection stays out of
#    the replay core
# ----------------------------------------------------------------------
@register_rule
class RetryDisciplineRule(Rule):
    """All sleeping goes through chaoskit; no fault hooks under uarch.

    Two halves of one contract.  First, ``time.sleep`` anywhere outside
    :mod:`repro.harness.faults` is an ad-hoc wait: it cannot be
    compressed by a chaos plan's ``sleep_scale``, cannot be seeded, and
    hides backoff policy at the call site — route it through
    ``faults.sleep`` or a ``RetryPolicy``, which that module owns.
    Second, the replay kernels must be bit-identical with and without an
    installed fault plan, so ``repro/uarch/`` may not import the fault
    machinery at all — trace-store faults are exercised through the
    :mod:`repro.atomicio` hooks below the uarch layer instead.
    """

    rule_id = "retry-discipline"
    contract = (
        "time.sleep only inside repro/harness/faults.py (faults.sleep / "
        "RetryPolicy own all waiting); repro/uarch/ never imports the "
        "fault-injection machinery"
    )

    #: The single module allowed to call ``time.sleep`` — the seam every
    #: other wait routes through.
    SLEEP_OWNER = "repro/harness/faults.py"

    def check(self, tree: ast.AST, path: str) -> Iterable[Finding]:
        in_uarch = "repro/uarch/" in path
        owner = path.endswith(self.SLEEP_OWNER)
        for node in ast.walk(tree):
            if (
                not owner
                and isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "sleep"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "time"
            ):
                yield self.finding(
                    node,
                    path,
                    "ad-hoc time.sleep; waiting must be centralised and "
                    "chaos-scalable — use repro.harness.faults.sleep (or a "
                    "RetryPolicy) instead",
                )
            elif not owner and isinstance(node, ast.ImportFrom):
                if (node.module or "").split(".")[0] == "time" and any(
                    alias.name == "sleep" for alias in node.names
                ):
                    yield self.finding(
                        node,
                        path,
                        "importing sleep from time sidesteps the centralised "
                        "wait seam; use repro.harness.faults.sleep instead",
                    )
            if in_uarch and isinstance(node, (ast.Import, ast.ImportFrom)):
                # import repro.harness.faults / from repro.harness import
                # faults / from repro.harness.faults import ... all count.
                module_names = [alias.name for alias in node.names]
                if isinstance(node, ast.ImportFrom):
                    module_names.append(node.module or "")
                if any("faults" in name.split(".") for name in module_names):
                    yield self.finding(
                        node,
                        path,
                        "fault-injection machinery imported into the replay "
                        "core; uarch statistics must be bit-identical with "
                        "and without a fault plan, so hooks stop at the "
                        "harness/atomicio layers",
                    )


# ----------------------------------------------------------------------
# 8. request-validation — service handlers validate before acting
# ----------------------------------------------------------------------
@register_rule
class RequestValidationRule(Rule):
    """Service handlers must validate client payloads before queue/cache IO.

    The experiment service daemon is the one place untrusted input
    meets the shared cache tree: a handler that enqueues or probes the
    caches from a raw client payload lets a malformed or hostile
    request plant garbage fingerprints, bypass the config whitelist, or
    dodge admission bounds.  The contract has a single chokepoint —
    :func:`repro.service.protocol.validate_request` — and this rule
    enforces its position: every ``handle_*`` function under
    ``repro/service/`` that touches the queue or the caches must call
    ``validate_request`` *before* its first touch.  The protocol module
    itself (the chokepoint's home) is exempt.
    """

    rule_id = "request-validation"
    contract = (
        "every repro/service/ handle_* function must pass the client "
        "payload through validate_request() before touching the queue or "
        "the caches"
    )

    #: Call names that constitute a queue/cache touch.  Resolution is
    #: syntactic (the trailing identifier), mirroring the other rules:
    #: over-approximate on purpose — a handler naming one of these at
    #: all should already hold a validated request.
    TOUCH_CALLS = frozenset(
        {
            "enqueue",
            "claim",
            "claim_batch",
            "complete",
            "fail",
            "requeue_expired",
            "status",
            "load",
            "store",
            "list_done",
            "list_poisoned",
            "done_marker",
            "poison_record",
        }
    )

    def applies_to(self, posix_path: str) -> bool:
        return "repro/service/" in posix_path and not posix_path.endswith(
            "protocol.py"
        )

    def check(self, tree: ast.AST, path: str) -> Iterable[Finding]:
        for function in _walk_functions(tree):
            if not function.name.startswith("handle_"):
                continue
            first_touch: Optional[ast.Call] = None
            validated_at: Optional[int] = None
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                name = _call_name(node.func)
                if name == "validate_request":
                    if validated_at is None or node.lineno < validated_at:
                        validated_at = node.lineno
                elif name in self.TOUCH_CALLS:
                    if first_touch is None or node.lineno < first_touch.lineno:
                        first_touch = node
            if first_touch is None:
                continue
            if validated_at is None:
                yield self.finding(
                    first_touch,
                    path,
                    f"handler {function.name}() touches the queue/caches "
                    "without validating the client payload; route it "
                    "through validate_request() first",
                )
            elif validated_at > first_touch.lineno:
                yield self.finding(
                    first_touch,
                    path,
                    f"handler {function.name}() touches the queue/caches "
                    "before validate_request(); validation must precede "
                    "the first queue/cache call",
                )


# ----------------------------------------------------------------------
# 9. telemetry-purity — observability never shapes simulation identity
# ----------------------------------------------------------------------
@register_rule
class TelemetryPurityRule(Rule):
    """Telemetry stays off the replay hot path and out of cache keys.

    The fleetscope layer (:mod:`repro.telemetry`) is an observer: spans,
    metric counters and kernel-throughput probes describe a run, they
    must never *change* one.  Two halves enforce that.  First,
    ``repro/uarch/`` — the replay kernels' inner loops — may not import
    any telemetry module: a span context manager or registry lookup in
    the per-instruction path is both a perf tax and a bit-identity
    hazard, so instrumentation stops at the harness layer (mirroring the
    fault-machinery ban in ``retry-discipline``).  Second, functions
    whose name contains ``fingerprint`` may not reference telemetry
    vocabulary (``telemetry``/``trace_id``/``probe``/
    ``cycles_per_second``/``metrics``): a probed throughput figure or
    trace id in a cache key
    would split bit-identical results across host-dependent keys,
    exactly the duplication ``fingerprint-purity`` exists to prevent for
    engines.
    """

    rule_id = "telemetry-purity"
    contract = (
        "repro/uarch/ never imports repro.telemetry (spans/metrics/probes "
        "stay off the replay hot path); telemetry vocabulary never flows "
        "into fingerprint construction (observations are not identity)"
    )

    IMPURE_TOKENS = ("telemetry", "trace_id", "probe", "cycles_per_second", "metrics")

    def check(self, tree: ast.AST, path: str) -> Iterable[Finding]:
        in_uarch = "repro/uarch/" in path
        for node in ast.walk(tree):
            if in_uarch and isinstance(node, (ast.Import, ast.ImportFrom)):
                # import repro.telemetry / from repro.telemetry import
                # spans / from repro.telemetry.spans import span all count.
                module_names = [alias.name for alias in node.names]
                if isinstance(node, ast.ImportFrom):
                    module_names.append(node.module or "")
                if any("telemetry" in name.split(".") for name in module_names):
                    yield self.finding(
                        node,
                        path,
                        "telemetry imported into the replay core; spans and "
                        "metric registries stay at the harness layer so the "
                        "per-instruction loop pays zero observability tax "
                        "and stats remain bit-identical when tracing is on",
                    )
        for function in _walk_functions(tree):
            if "fingerprint" not in function.name.lower():
                continue
            yield from self._check_fingerprint(function, path)

    def _check_fingerprint(self, function: ast.AST, path: str) -> Iterator[Finding]:
        body = function.body
        if (
            body
            and isinstance(body[0], ast.Expr)
            and _string_constant(body[0].value) is not None
        ):
            body = body[1:]  # prose may mention the contract by name
        for arg in ast.walk(function):
            if isinstance(arg, ast.arg) and self._impure(arg.arg):
                yield self.finding(
                    arg,
                    path,
                    f"fingerprint function {function.name!r} takes telemetry "
                    f"parameter {arg.arg!r}; observations must not enter "
                    "cache keys",
                )
        for statement in body:
            for node in ast.walk(statement):
                label: Optional[str] = None
                if isinstance(node, ast.Name) and self._impure(node.id):
                    label = node.id
                elif isinstance(node, ast.Attribute) and self._impure(node.attr):
                    label = node.attr
                elif isinstance(node, ast.keyword) and node.arg and self._impure(node.arg):
                    label = node.arg
                elif isinstance(node, ast.Dict):
                    for key in node.keys:
                        text = _string_constant(key)
                        if text is not None and self._impure(text):
                            yield self.finding(
                                key,
                                path,
                                f"dict key {text!r} inside fingerprint "
                                f"function {function.name!r} injects a "
                                "telemetry value into the cache key",
                            )
                    continue
                if label is not None:
                    yield self.finding(
                        node,
                        path,
                        f"telemetry identifier {label!r} referenced inside "
                        f"fingerprint function {function.name!r}; spans, "
                        "probes and metric values are observations, not "
                        "identity, and must not enter cache keys",
                    )

    def _impure(self, name: str) -> bool:
        lowered = name.lower()
        return any(token in lowered for token in self.IMPURE_TOKENS)
