"""fleetscope: structured tracing, fleet metrics, probes, and the trend gate.

The observability plane for the distributed harness (docs/observability.md):

* :mod:`repro.telemetry.spans` — explicit span objects with monotonic
  durations, propagated driver→enqueue→claim→replay→complete through
  the queue envelope under one request id, published atomically to
  ``<cache_dir>/telemetry/spans/<host>-<pid>.jsonl``.  No-op by default
  (one is-None check); opt in with ``REPRO_TELEMETRY=1``.
* :mod:`repro.telemetry.metrics` — the counters/gauges/histograms
  registry behind ``cache_stats()``, the queue counters, the completion
  core, and the service daemon's ``status`` op, all sharing one
  ``snapshot()`` shape.
* :mod:`repro.telemetry.probes` — per-kernel throughput calibration so
  each worker can publish ``cycles_per_second`` per replay engine and
  execute with the fastest one (bit-identity untouched; engines never
  enter fingerprints).
* :mod:`repro.telemetry.trend` — ``python -m repro.telemetry.trend``
  gates the ``BENCH_trace.json`` perf trajectory with a MAD-based
  noise band.

This package is imported by the harness and service layers only; the
reprolint ``telemetry-purity`` rule forbids it under ``repro/uarch/``
(the replay hot path) and anywhere near fingerprint construction.
Heavy imports live in :mod:`.probes` and stay function-local, so
importing this package is cheap.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_property,
    percentile,
)
from repro.telemetry.spans import (
    ENV_VAR,
    SPAN_FORMAT,
    Span,
    SpanRecorder,
    current_trace,
    disable,
    enable,
    enabled,
    flush,
    install_from_env,
    maybe_trace_scope,
    new_trace_id,
    queue_latency_summary,
    read_spans,
    span,
    spans_directory,
    trace_scope,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter_property",
    "percentile",
    "ENV_VAR",
    "SPAN_FORMAT",
    "Span",
    "SpanRecorder",
    "current_trace",
    "disable",
    "enable",
    "enabled",
    "flush",
    "install_from_env",
    "maybe_trace_scope",
    "new_trace_id",
    "queue_latency_summary",
    "read_spans",
    "span",
    "spans_directory",
    "trace_scope",
]
