"""Dominator analysis.

Natural-loop detection needs dominators: an edge ``n -> h`` is a back edge
(and ``h`` a loop header) exactly when ``h`` dominates ``n``.  The iterative
data-flow formulation is used; procedure CFGs in this project are small
(tens to a few hundred blocks) so the simple algorithm is more than fast
enough and easy to verify.
"""

from __future__ import annotations

from repro.cfg.graph import ControlFlowGraph


def compute_dominators(cfg: ControlFlowGraph) -> dict[str, set[str]]:
    """Return, for each reachable block, the set of blocks that dominate it.

    Unreachable blocks are omitted from the result.
    """
    order = cfg.reverse_postorder()
    reachable = set(order)
    entry = cfg.entry

    dominators: dict[str, set[str]] = {label: set(reachable) for label in order}
    dominators[entry] = {entry}

    changed = True
    while changed:
        changed = False
        for label in order:
            if label == entry:
                continue
            preds = [p for p in cfg.pred(label) if p in reachable]
            if preds:
                new_set = set.intersection(*(dominators[p] for p in preds))
            else:
                new_set = set()
            new_set = new_set | {label}
            if new_set != dominators[label]:
                dominators[label] = new_set
                changed = True
    return dominators


def immediate_dominators(cfg: ControlFlowGraph) -> dict[str, str]:
    """Return the immediate dominator of each reachable block except the entry."""
    dominators = compute_dominators(cfg)
    idom: dict[str, str] = {}
    for label, doms in dominators.items():
        if label == cfg.entry:
            continue
        strict = doms - {label}
        # The immediate dominator is the strict dominator dominated by every
        # other strict dominator.
        for candidate in strict:
            if all(candidate in dominators[other] for other in strict):
                idom[label] = candidate
                break
    return idom


def dominates(dominators: dict[str, set[str]], a: str, b: str) -> bool:
    """True when block ``a`` dominates block ``b`` according to ``dominators``."""
    return a in dominators.get(b, set())
