"""Wire protocol for the experiment service: framing and validation.

Every message — request or event — is one JSON object on one
``\\n``-terminated line, UTF-8 encoded (the classic newline-delimited
JSON pump; BenchPress's request/response socket loop is the shape
exemplar named in ROADMAP.md).  Requests carry an ``op`` and a
client-chosen ``id``; every event the daemon streams back echoes that
``id`` so one connection can correlate interleaved subscriptions.

The **validation chokepoint** is :func:`validate_request`: every
daemon handler must pass a decoded client payload through it before
touching the queue or the caches (the ``request-validation`` reprolint
rule enforces exactly this).  Validation is strict — unknown ops,
unknown benchmarks/techniques, unknown config fields, out-of-bounds
budgets and malformed shapes all raise :class:`RequestError` — so a
hostile or buggy client can neither enqueue garbage fingerprints nor
probe the caches with unchecked input.

Request shapes::

    {"op": "simulate", "id": ..., "benchmark": "gzip",
     "technique": "abella", "config": {...}, "priority": 0-9}
    {"op": "grid", "id": ..., "benchmarks": [...], "techniques": [...],
     "config": {...}, "priority": 0-9}
    {"op": "status", "id": ...}

``config`` may override only the whitelisted :class:`RunConfig` budget
fields (:data:`CONFIG_FIELDS`); compiler/processor/energy parameters
are the server's, so every client computes against the same machine
model and identical requests collapse to identical fingerprints.

Event shapes (all echo ``id``)::

    {"event": "accepted", "id": ..., "cells": N, "cached": K,
     "deduped": M, "enqueued": E}
    {"event": "rejected", "id": ..., "reason": "overload"|"invalid",
     "message": ...}
    {"event": "progress", "id": ..., "benchmark": ..., "technique": ...,
     "source": "cache"|"queue", "done": n, "total": N}
    {"event": "result", "id": ..., "cells": [{"benchmark": ...,
     "technique": ..., "stats": {...}}, ...]}
    {"event": "error", "id": ..., "message": ...}
    {"event": "status", "id": ..., "queue": {...}, "service": {...}}
"""

from __future__ import annotations

import json
from typing import Optional

from repro.harness.experiment import RunConfig, TECHNIQUES
from repro.harness.queue import PRIORITY_MAX, PRIORITY_MIN
from repro.workloads import ALL_TRAITS

#: Bump when the request/event shapes change incompatibly; the daemon
#: rejects requests declaring a different version (absent means 1).
PROTOCOL_VERSION = 1

#: Hard per-line ceiling.  A line that exceeds it is a protocol error
#: (the connection is dropped) — without a bound, one client writing an
#: endless line would grow a daemon-side buffer without limit.
MAX_LINE_BYTES = 1 << 20

#: The RunConfig fields a client may override, with their bounds.  Only
#: the run *budgets* are tunable; the machine model (compiler,
#: processor, energy parameters) is fixed server-side so identical
#: requests from different clients hash to identical fingerprints.
CONFIG_FIELDS: dict[str, tuple[int, int]] = {
    "max_instructions": (1, 5_000_000),
    "warmup_instructions": (0, 1_000_000),
    "abella_interval": (1, 100_000),
}

VALID_OPS = ("simulate", "grid", "status")


class RequestError(ValueError):
    """A client payload failed validation; the message is client-safe."""


def _require_str_list(value, what: str, allowed) -> list[str]:
    if not isinstance(value, list) or not value:
        raise RequestError(f"{what} must be a non-empty list")
    names: list[str] = []
    for item in value:
        if not isinstance(item, str):
            raise RequestError(f"{what} entries must be strings")
        if item not in allowed:
            raise RequestError(f"unknown {what[:-1]} {item!r}")
        if item not in names:
            names.append(item)
    return names


def _validate_config(value) -> dict:
    if value is None:
        return {}
    if not isinstance(value, dict):
        raise RequestError("config must be an object")
    overrides: dict[str, int] = {}
    for field, override in value.items():
        bounds = CONFIG_FIELDS.get(field)
        if bounds is None:
            raise RequestError(f"unknown config field {field!r}")
        if isinstance(override, bool) or not isinstance(override, int):
            raise RequestError(f"config field {field!r} must be an integer")
        low, high = bounds
        if not low <= override <= high:
            raise RequestError(
                f"config field {field!r} out of bounds [{low}, {high}]"
            )
        overrides[field] = override
    return overrides


def validate_request(payload) -> dict:
    """The one chokepoint between raw client JSON and the queue/caches.

    Returns a normalized request dict: ``op``, ``id`` (echoed verbatim,
    None when absent), ``priority`` (int in band range), and for the
    work-bearing ops ``benchmarks``/``techniques`` (deduplicated,
    order-preserved lists) plus ``config`` (whitelisted overrides
    only).  Raises :class:`RequestError` on anything else — handlers
    must not touch the queue or caches before this call returns.
    """
    if not isinstance(payload, dict):
        raise RequestError("request must be a JSON object")
    version = payload.get("version", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise RequestError(f"unsupported protocol version {version!r}")
    op = payload.get("op")
    if op not in VALID_OPS:
        raise RequestError(f"unknown op {op!r}; valid ops: {', '.join(VALID_OPS)}")
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, (str, int)):
        raise RequestError("id must be a string or integer")
    priority = payload.get("priority", PRIORITY_MIN)
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise RequestError("priority must be an integer")
    if not PRIORITY_MIN <= priority <= PRIORITY_MAX:
        raise RequestError(
            f"priority out of band range [{PRIORITY_MIN}, {PRIORITY_MAX}]"
        )
    normalized: dict = {"op": op, "id": request_id, "priority": priority}
    if op == "status":
        return normalized
    if op == "simulate":
        benchmarks = _require_str_list(
            [payload.get("benchmark")], "benchmarks", ALL_TRAITS
        )
        techniques = _require_str_list(
            [payload.get("technique")], "techniques", TECHNIQUES
        )
    else:
        benchmarks = _require_str_list(
            payload.get("benchmarks"), "benchmarks", ALL_TRAITS
        )
        techniques = _require_str_list(
            payload.get("techniques"), "techniques", TECHNIQUES
        )
    overrides = _validate_config(payload.get("config"))
    max_instructions = overrides.get(
        "max_instructions", RunConfig.max_instructions
    )
    warmup = overrides.get("warmup_instructions", RunConfig.warmup_instructions)
    if warmup >= max_instructions:
        raise RequestError(
            "warmup_instructions must be smaller than max_instructions"
        )
    normalized["benchmarks"] = benchmarks
    normalized["techniques"] = techniques
    normalized["config"] = overrides
    return normalized


def encode_line(message: dict) -> bytes:
    """One protocol message as a complete UTF-8 line."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode_line(line: bytes) -> dict:
    """Parse one received line; :class:`RequestError` on malformed JSON."""
    if len(line) > MAX_LINE_BYTES:
        raise RequestError("request line exceeds MAX_LINE_BYTES")
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise RequestError(f"malformed request line: {error}") from None
    if not isinstance(payload, dict):
        raise RequestError("request must be a JSON object")
    return payload
