"""Repository-level pytest configuration.

Adds the ``--workers`` option (default: the ``REPRO_WORKERS`` environment
variable, else 1) controlling how many processes
:class:`~repro.harness.parallel.ParallelSuiteRunner`-based tests and the
figure benchmarks fan out over.  The default of 1 keeps tier-1 runs
in-process and deterministic; CI or local reproduction runs can pass
``--workers N`` or export ``REPRO_WORKERS=N`` to exercise the pool.

Adds the ``--engine`` option (default: the ``REPRO_REPLAY_KERNEL``
environment variable, else the library's scalar default) selecting the
replay kernel every simulation in the session runs under.  It is
exported back into ``REPRO_REPLAY_KERNEL`` at configure time so the
whole stack — direct ``simulate`` calls, suite runners, pool workers and
queue worker subprocesses — inherits one kernel; replay statistics are
bit-identical between kernels, so tier-1 results must not change with
this option (that invariance is itself under test in
``tests/test_engines.py``).  Selecting a kernel whose toolchain is
absent on this host (``--engine native`` without a C compiler,
``--engine columnar`` without numpy) skips the session cleanly rather
than erroring.
"""

from __future__ import annotations

import os

import pytest


def pytest_addoption(parser) -> None:
    # Same "0/unset means no explicit request" convention as
    # ParallelSuiteRunner's env parsing, but the test default is 1 worker
    # (in-process, deterministic) where the library defaults to cpu_count.
    parser.addoption(
        "--workers",
        type=int,
        default=int(os.environ.get("REPRO_WORKERS") or 0) or 1,
        help="worker processes for parallel suite runners (env: REPRO_WORKERS; "
        "0/unset means 1 here)",
    )
    # Choices come from the engine registry, not a hardcoded tuple, so a
    # newly registered kernel is selectable here without edits.  Guarded:
    # an import failure in an option hook would kill pytest before it can
    # print a normal collection error (e.g. PYTHONPATH=src forgotten).
    try:
        from repro.uarch.engine import available_engines

        engines = available_engines()
    except ImportError:
        engines = ("scalar", "columnar")

    # Opt-out for the reprolint tier-1 gate (tests/test_analysis.py's
    # shipped-tree check).  Default ON: a plain `python -m pytest -x -q`
    # fails on any new invariant violation under src/; pass --no-lint
    # while iterating on a change that is expected to lint dirty.  The
    # per-rule unit tests always run — only the whole-tree gate is
    # skippable.
    parser.addoption(
        "--no-lint",
        action="store_true",
        default=False,
        help="skip the reprolint shipped-tree gate "
        "(python -m repro.analysis src/) in tests/test_analysis.py",
    )

    # Opt-out for the fleetscope telemetry tests (tests/test_telemetry.py
    # and the span/probe assertions elsewhere), mirroring --no-lint.
    # Default ON: tracing is no-op-by-default on the hot path, so the
    # telemetry tests enable it explicitly per test; --no-telemetry skips
    # those tests and force-disables tracing for the whole session (for
    # bisecting perf noise or running on a box where the span store's
    # extra file IO is unwanted).
    parser.addoption(
        "--no-telemetry",
        action="store_true",
        default=False,
        help="skip telemetry-marked tests and force-disable span tracing "
        "for the session (REPRO_TELEMETRY=0)",
    )

    parser.addoption(
        "--engine",
        choices=engines,
        default=None,
        help="replay kernel for every simulation in the session "
        "(env: REPRO_REPLAY_KERNEL; unset means the library default, "
        "scalar); statistics are bit-identical between kernels",
    )

    parser.addoption(
        "--faults",
        default=None,
        metavar="SPEC",
        help="run the whole session under a chaoskit fault plan: a preset "
        "name (light, heavy) or a spec like "
        "'seed=3,rate=0.2,fire_limit=1,sleep_scale=0.1' "
        "(see repro.harness.faults.FaultPlan.from_spec).  Installs the "
        "deterministic injector in-process and exports REPRO_FAULT_PLAN "
        "so spawned queue workers inherit the same schedule.  Simulation "
        "results stay bit-identical under chaos (the gate in "
        "tests/test_faults.py), but visibility-sensitive unit tests may "
        "legitimately diverge — see docs/fault-model.md for scoping "
        "plans with sites=",
    )


def pytest_configure(config) -> None:
    config.addinivalue_line(
        "markers",
        "telemetry: test exercises the fleetscope span/metrics/probe "
        "plane (deselected by --no-telemetry)",
    )
    if config.getoption("--no-telemetry"):
        # Environment, not a fixture, for the same subprocess reason as
        # --engine: "0" pins install_from_env() to disabled in spawned
        # queue workers and daemons too.
        os.environ["REPRO_TELEMETRY"] = "0"
        from repro.telemetry import spans as tracing

        tracing.disable()
    engine = config.getoption("--engine")
    if engine:
        # Environment, not a fixture: the kernel must reach code that
        # never sees pytest — library-default simulate() calls, process
        # pools, and the queue worker subprocesses tests spawn.
        os.environ["REPRO_REPLAY_KERNEL"] = engine
    fault_spec = config.getoption("--faults")
    if fault_spec:
        # Same environment-not-fixture reasoning as --engine: worker
        # subprocesses self-install from REPRO_FAULT_PLAN at startup.
        from repro.harness.faults import FaultInjector, FaultPlan, install

        plan = FaultPlan.from_spec(fault_spec)
        os.environ["REPRO_FAULT_PLAN"] = plan.to_spec()
        install(FaultInjector(plan))


def pytest_collection_modifyitems(config, items) -> None:
    if config.getoption("--no-telemetry"):
        skip_marker = pytest.mark.skip(
            reason="--no-telemetry: telemetry plane opted out"
        )
        for item in items:
            if "telemetry" in item.keywords:
                item.add_marker(skip_marker)

    # ``--engine`` with a registered-but-unavailable kernel (native
    # without a C toolchain, columnar without numpy) skips the session
    # cleanly instead of erroring out of every simulation — mirroring how
    # the JaCe/hpy conftests treat an absent optional backend.  The
    # availability probe is the engine's own unavailable_reason() seam,
    # so a future kernel gets this behaviour for free.
    engine = config.getoption("--engine")
    if engine:
        try:
            from repro.uarch.engine import get_engine

            reason = get_engine(engine).unavailable_reason()
        except ImportError:
            reason = None
        if reason is not None:
            skip_marker = pytest.mark.skip(
                reason=f"--engine {engine} unavailable on this host: {reason}"
            )
            for item in items:
                item.add_marker(skip_marker)


@pytest.fixture(scope="session")
def suite_workers(request) -> int:
    """Worker count for ParallelSuiteRunner-based tests and benchmarks."""
    return request.config.getoption("--workers")


@pytest.fixture(scope="session")
def replay_engine(request) -> str:
    """The session's effective replay kernel name."""
    from repro.uarch.engine import resolve_engine_name

    return resolve_engine_name(request.config.getoption("--engine"))
